/**
 * @file
 * The ReclaimEngine: the memory-pressure side of the kernel, sibling
 * of the FaultEngine. It implements the Linux-shaped reclaim pipeline
 * the allocation slow path escalates through when a zone runs dry:
 *
 *   fast path -> wake kswapd -> direct reclaim -> (demote) -> OOM
 *
 * Victims come off per-zone inactive/active LRU lists (second-chance
 * referenced bits, block-head grain: one list node per mapped leaf).
 * Anonymous victims are swapped out against a modelled swap device
 * (per-page I/O cost, bounded swap cache); THP victims are split into
 * 512 base mappings first, exactly like split_huge_page on the Linux
 * reclaim path; clean page-cache victims are dropped. A kswapd
 * reclaimer balances zones to the `high` watermark in the background
 * (own thread when the kernel is threaded, synchronous at fault entry
 * when sequential, keeping single-threaded runs deterministic).
 *
 * Lock discipline (see DESIGN.md "Memory pressure & reclaim"): the
 * scanner reads candidate frames' owner triples *racily* (they are
 * relaxed atomics), then re-validates against the owner's page table
 * under the victim VMA's fault lock before touching anything. Every
 * lock it takes beyond the shared mm lock is a try_lock, so reclaim
 * can never deadlock against a fault path that already holds the
 * victim's locks — it just skips the frame. The zone LRU lock is a
 * leaf below everything.
 *
 * None of this state exists when KernelConfig::reclaimEnabled is off:
 * the kernel never constructs a ReclaimEngine, the claim/free hooks
 * compile to a null-pointer test, and the allocation path is
 * byte-identical to the pre-reclaim kernel (golden-gated).
 */

#ifndef CONTIG_MM_RECLAIM_HH
#define CONTIG_MM_RECLAIM_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "base/sync.hh"
#include "base/types.hh"
#include "phys/zone.hh"

namespace contig
{

class Kernel;
class Process;
class Vma;

namespace obs
{
class MetricSink;
} // namespace obs

/**
 * Modelled swap-device costs. Swap-out is asynchronous writeback
 * (cheap, charged to the reclaimer); swap-in is a synchronous read
 * stall charged to the refaulting fault. Recently swapped-out pages
 * sit in a bounded FIFO swap cache whose hits cost a memcpy, not an
 * I/O.
 */
struct SwapCostModel
{
    Cycles outCyclesPerPage = 8000;
    Cycles inCyclesPerPage = 60000;
    Cycles cacheHitCycles = 3000;
    std::uint64_t cachePages = 1024;
};

/**
 * Reclaim-path counters ("reclaim.*" metrics). Atomic because kswapd,
 * direct-reclaiming fault workers and refaulting threads all bump
 * them concurrently; everything is relaxed (pure statistics).
 */
struct ReclaimStats
{
    std::atomic<std::uint64_t> scans{0};        //!< LRU entries examined
    std::atomic<std::uint64_t> rotations{0};    //!< second-chance promotions
    std::atomic<std::uint64_t> deactivations{0}; //!< active -> inactive moves
    std::atomic<std::uint64_t> reclaimed{0};    //!< pages freed, any kind
    std::atomic<std::uint64_t> swapOuts{0};     //!< anon pages swapped out
    std::atomic<std::uint64_t> refaults{0};     //!< swap-ins on touch
    std::atomic<std::uint64_t> swapCacheHits{0};
    std::atomic<std::uint64_t> thpSplits{0};    //!< huge leaves split
    std::atomic<std::uint64_t> pagecacheReclaimed{0};
    std::atomic<std::uint64_t> kswapdWakes{0};
    std::atomic<std::uint64_t> kswapdRuns{0};
    std::atomic<std::uint64_t> directReclaims{0};
    std::atomic<std::uint64_t> targetedReclaims{0};
    std::atomic<std::uint64_t> directCycles{0};
    std::atomic<std::uint64_t> kswapdCycles{0};
    std::atomic<std::uint64_t> lowHits{0};      //!< entries below low wm
    std::atomic<std::uint64_t> minHits{0};      //!< entries below min wm
    std::atomic<std::uint64_t> pinnedSkips{0};  //!< unreclaimable victims
    std::atomic<std::uint64_t> busySkips{0};    //!< lock-held victims
};

class ReclaimEngine
{
  public:
    explicit ReclaimEngine(Kernel &kernel);
    ~ReclaimEngine();

    ReclaimEngine(const ReclaimEngine &) = delete;
    ReclaimEngine &operator=(const ReclaimEngine &) = delete;

    /** What one reclaim pass achieved. */
    struct Progress
    {
        std::uint64_t freed = 0; //!< base pages returned to the buddy
        Cycles cycles = 0;       //!< modelled reclaim cost
    };

    // --- hooks from the kernel's frame lifecycle -------------------------

    /**
     * A freshly buddy-allocated block was claimed (Kernel::
     * claimFrames). Anon and page-cache blocks enter the owning
     * zone's inactive list at the MRU end; page-table frames are
     * kernel-pinned and never listed.
     */
    void onClaim(Pfn pfn, unsigned order, FrameOwner kind);

    /** The block headed at pfn is going back to the buddy. */
    void onFree(Pfn pfn);

    /** Second-chance bit: the mapped block at head was accessed. */
    void noteReferenced(Pfn head);

    // --- swap ------------------------------------------------------------

    /**
     * A fault is installing [base, base + 2^order) for `pid`: erase
     * any swap entries the range covers and return the modelled
     * swap-in stall (0 when nothing was swapped — one relaxed load on
     * that fast path).
     */
    Cycles chargeSwapIn(std::uint32_t pid, Vpn base, unsigned order);

    /** munmap/exit: drop swap entries of [start, start+pages) of pid. */
    void dropVmaRange(std::uint32_t pid, Vpn start, std::uint64_t pages);

    /** Pages currently swapped out across all processes. */
    std::uint64_t
    swappedPages() const
    {
        return swappedPages_.load(std::memory_order_relaxed);
    }

    // --- pressure entry points -------------------------------------------

    /**
     * Fault-entry watermark probe: below `low` wakes kswapd (threaded)
     * or balances the node synchronously to `high` (sequential,
     * keeping single-threaded runs deterministic). Costs one relaxed
     * load when the zone is above `low`.
     */
    void checkWatermarks(NodeId node);

    /** Nudge the background reclaimer (no-op when sequential). */
    void wakeKswapd();

    /**
     * Direct reclaim: synchronously free >= want_pages base pages
     * from `node` (falling back to other nodes), called by the
     * allocation slow path under the shared mm lock.
     */
    Progress directReclaim(NodeId node, std::uint64_t want_pages);

    /**
     * Re-entrancy guard for the page-cache fill path: while a thread
     * holds one of these, any reclaim it triggers skips page-cache
     * victims — otherwise a sequential kernel (whose page-cache lock
     * is disengaged) could evict the very pages the enclosing
     * readahead run just installed.
     */
    class PageCacheFillScope
    {
      public:
        PageCacheFillScope() { ++tlsFillDepth_; }
        ~PageCacheFillScope() { --tlsFillDepth_; }
        PageCacheFillScope(const PageCacheFillScope &) = delete;
        PageCacheFillScope &operator=(const PageCacheFillScope &) = delete;
    };

    /**
     * Fault-path marker: this thread holds `vma`'s fault lock. Direct
     * reclaim running on the same thread may then evict that VMA's
     * pages without (re)taking the lock — without this, N workers
     * each mid-fault on their own VMA would mutually skip every
     * candidate (all of memory belongs to locked VMAs) and a fully
     * reclaimable machine would report OOM.
     */
    class HeldVmaScope
    {
      public:
        explicit HeldVmaScope(const Vma *vma) : prev_(tlsHeldVma_)
        {
            tlsHeldVma_ = vma;
        }
        ~HeldVmaScope() { tlsHeldVma_ = prev_; }
        HeldVmaScope(const HeldVmaScope &) = delete;
        HeldVmaScope &operator=(const HeldVmaScope &) = delete;

      private:
        const Vma *prev_;
    };

    /**
     * Bumped on every eviction that unmaps page-table leaves (anon
     * evictions and THP splits). Unmapping can free empty page-table
     * nodes, so batch installers holding a PageTable::RunMapper
     * snapshot this around anything that can reclaim and invalidate
     * the mapper's cached node when it moved.
     */
    std::uint64_t
    unmapEpoch() const
    {
        return unmapEpoch_.load(std::memory_order_relaxed);
    }

    /**
     * Targeted (contiguity-aware) reclaim: try to evict every
     * reclaimable block inside [base, base + 2^order) so the span can
     * be allocated as one free block — how CA paging / Ranger route
     * their replacement decisions through the reclaim machinery.
     * Returns the base pages freed.
     */
    std::uint64_t reclaimRange(Pfn base, unsigned order);

    /** Victim selection prefers blocks that restore large free runs. */
    bool contigAware() const { return contigAware_; }

    // --- kswapd ----------------------------------------------------------

    /** Launch the background reclaimer thread (threaded kernels). */
    void startKswapd();

    /** Join kswapd; further wakes are no-ops. Idempotent. */
    void stop();

    // --- observation ------------------------------------------------------

    const ReclaimStats &stats() const { return stats_; }

    /** Report reclaim.* (called under the kernel's "reclaim" scope). */
    void collectMetrics(obs::MetricSink &sink) const;

  private:
    /** Outcome of looking at one popped LRU candidate. */
    enum class Victim : std::uint8_t
    {
        Freed,    //!< pages returned to the buddy
        Split,    //!< THP split into 512 inactive base candidates
        Rotated,  //!< referenced bit seen; promoted to active
        Requeued, //!< lock busy; back to inactive MRU
        Pinned,   //!< unreclaimable; left off every list
        Gone,     //!< freed/re-claimed since the pop; nothing to do
    };

    Victim scanOne(Zone &zone, const Zone::LruEntry &e, Progress &out);
    Victim evictAnon(Zone &zone, Pfn head, unsigned order, Progress &out);
    Victim evictPageCache(Zone &zone, Pfn head, Progress &out);
    /** Split one validated huge leaf; caller holds the vma fault lock. */
    void splitHugeLocked(Zone &zone, Process &proc, Vma &vma, Vpn base,
                        Pfn head);
    /** Record a swap-out of (pid, vpn); returns the modelled cost. */
    Cycles recordSwapOut(std::uint32_t pid, Vpn vpn);

    /**
     * Shrink one zone by ~target base pages: demote active overflow,
     * pop inactive-tail batches, second-chance or evict each.
     */
    Progress shrinkZone(Zone &zone, std::uint64_t target);

    /** Occupied-page probe of the enclosing 2 MiB block (0..64). */
    unsigned contigScore(Pfn head) const;

    /** Bring the zone of `node` back to its high watermark. */
    Progress balanceNode(NodeId node);

    void kswapdLoop();

    Kernel &kernel_;
    const bool threaded_;
    const bool contigAware_;
    const SwapCostModel cost_;
    ReclaimStats stats_;
    std::atomic<std::uint64_t> unmapEpoch_{0};
    static thread_local unsigned tlsFillDepth_;
    static thread_local const Vma *tlsHeldVma_;

    // --- swap state (slot ids model disk blocks) -------------------------
    mutable SpinLock swapLock_;
    /** pid -> vpn -> swap slot. */
    std::unordered_map<std::uint32_t,
                       std::unordered_map<Vpn, std::uint64_t>>
        swapMap_;
    std::uint64_t nextSlot_ = 0;
    /** FIFO swap cache of recent slots (hits skip the I/O stall). */
    std::deque<std::uint64_t> swapCacheFifo_;
    std::unordered_set<std::uint64_t> swapCacheSet_;
    std::atomic<std::uint64_t> swappedPages_{0};

    // --- kswapd ----------------------------------------------------------
    std::thread kswapd_;
    std::mutex kswapdMu_;
    std::condition_variable kswapdCv_;
    bool kswapdWakePending_ = false;
    bool kswapdStop_ = false;
    bool kswapdRunning_ = false;
};

} // namespace contig

#endif // CONTIG_MM_RECLAIM_HH
