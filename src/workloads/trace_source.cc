#include "workloads/trace_source.hh"

#include <chrono>

#include "base/logging.hh"

namespace contig
{

namespace
{

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

TraceReplaySource::TraceReplaySource(const std::string &path, Options opt)
    : reader_(path), startChunk_(opt.startChunk),
      ring_(opt.ringDepth ? opt.ringDepth : 1)
{
    contig_assert(startChunk_ <= reader_.chunkCount(),
                  "resume chunk %llu past the trace's %llu chunks",
                  static_cast<unsigned long long>(startChunk_),
                  static_cast<unsigned long long>(reader_.chunkCount()));
    produced_ = reader_.accessesBeforeChunk(startChunk_);

    metricSource_ = obs::MetricSource(
        obs::MetricRegistry::global(), "trace",
        [this](obs::MetricSink &sink) {
            sink.counter("frontend.chunks_decoded",
                         chunksDecoded_.load(std::memory_order_relaxed));
            sink.counter(
                "frontend.accesses_decoded",
                accessesDecoded_.load(std::memory_order_relaxed));
            sink.counter("frontend.bytes_decoded",
                         bytesDecoded_.load(std::memory_order_relaxed));
            sink.counter("frontend.decode_us",
                         decodeNs_.load(std::memory_order_relaxed) /
                             1000);
            sink.counter(
                "frontend.stall_us",
                producerStallNs_.load(std::memory_order_relaxed) / 1000);
            sink.counter(
                "frontend.wait_us",
                consumerWaitNs_.load(std::memory_order_relaxed) / 1000);
            sink.gauge("frontend.ring_depth",
                       static_cast<double>(ring_.size()));
            sink.counter("frontend.start_chunk", startChunk_);
        });

    producer_ = std::thread([this] { producerLoop(); });
}

TraceReplaySource::~TraceReplaySource()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        stop_ = true;
    }
    canProduce_.notify_all();
    canConsume_.notify_all();
    if (producer_.joinable())
        producer_.join();
}

void
TraceReplaySource::producerLoop()
{
    const std::uint64_t chunks = reader_.chunkCount();
    for (std::uint64_t k = startChunk_; k < chunks; ++k) {
        Slot *slot = nullptr;
        {
            std::unique_lock<std::mutex> lk(m_);
            if (head_ - tail_ == ring_.size()) {
                const std::uint64_t t0 = nowNs();
                canProduce_.wait(lk, [this] {
                    return stop_ || head_ - tail_ < ring_.size();
                });
                producerStallNs_.fetch_add(nowNs() - t0,
                                           std::memory_order_relaxed);
            }
            if (stop_)
                return;
            slot = &ring_[head_ % ring_.size()];
        }
        // Decode outside the lock: the slot at head_ stays invisible
        // to the consumer until head_ advances below.
        const std::uint64_t d0 = nowNs();
        slot->n = reader_.decodeChunk(k, slot->buf);
        decodeNs_.fetch_add(nowNs() - d0, std::memory_order_relaxed);
        chunksDecoded_.fetch_add(1, std::memory_order_relaxed);
        accessesDecoded_.fetch_add(slot->n, std::memory_order_relaxed);
        bytesDecoded_.fetch_add(reader_.chunkEncodedBytes(k),
                                std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lk(m_);
            ++head_;
        }
        canConsume_.notify_one();
    }
    {
        std::lock_guard<std::mutex> lk(m_);
        eof_ = true;
    }
    canConsume_.notify_one();
}

std::size_t
TraceReplaySource::next(const MemAccess *&chunk)
{
    std::unique_lock<std::mutex> lk(m_);
    if (holding_) {
        ++tail_;
        holding_ = false;
        canProduce_.notify_one();
    }
    if (head_ == tail_ && !eof_) {
        const std::uint64_t t0 = nowNs();
        canConsume_.wait(lk, [this] { return head_ > tail_ || eof_; });
        consumerWaitNs_.fetch_add(nowNs() - t0,
                                  std::memory_order_relaxed);
    }
    if (head_ == tail_) {
        // EOF and the ring is drained.
        chunk = nullptr;
        return 0;
    }
    Slot &s = ring_[tail_ % ring_.size()];
    holding_ = true;
    produced_ += s.n;
    ++chunksDelivered_;
    chunk = s.buf.data();
    return s.n;
}

} // namespace contig
