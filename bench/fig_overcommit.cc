/**
 * @file
 * Overcommit & refault: the memory-pressure experiment the reclaim
 * path exists for. The machine is shrunk to 2 x 96 MiB and a single
 * anonymous working set of 1.6x physical memory is populated, so the
 * allocation slow path must escalate through wake-kswapd ->
 * direct-reclaim for the run to complete at all. Each policy runs
 * twice: once with plain second-chance LRU victim selection and once
 * with contiguity-aware selection (sparse 2 MiB blocks evicted first,
 * CA/Ranger busy targets routed through targeted reclaim), exposing
 * the defrag-vs-reclaim interplay: the contig-aware kernel should
 * hold more huge-frame coverage (cov32, FMFI, largest free cluster)
 * at the same reclaim volume. A SpOT translation leg replays the
 * resident hot set, showing what the surviving contiguity buys.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/bench_io.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "mm/kernel.hh"
#include "perfmodel/model.hh"
#include "phys/buddy.hh"
#include "phys/contiguity_map.hh"

using namespace contig;

namespace
{

constexpr std::uint64_t kMiB = 1ull << 20;

/** Shrunken machine: 2 nodes x 96 MiB. */
constexpr std::uint64_t kNodeBytes = 96 * kMiB;
constexpr unsigned kNodes = 2;
constexpr std::uint64_t kPhysBytes = kNodes * kNodeBytes;

/** Working set: 1.6x physical memory (the overcommit). */
constexpr std::uint64_t kWsBytes = kPhysBytes + (kPhysBytes * 3) / 5;

/** Hot set: a quarter of physical memory, touched last (stays
 *  resident) and replayed by the translation leg. */
constexpr std::uint64_t kHotBytes = kPhysBytes / 4;

constexpr std::uint64_t kXlatAccesses = 1ull << 19;

/**
 * One anonymous region of 1.6x physical memory. Population sweeps the
 * whole region once (forcing eviction of the early pages), then
 * re-touches the hot prefix — whose pages were swapped out by the
 * tail of the sweep — so the fault path takes real refaults with
 * modelled swap-in stalls. Steady-state accesses stay inside the hot
 * prefix: under LRU it is the resident set, and the translation
 * replay requires mapped addresses.
 */
class OvercommitWorkload : public Workload
{
  public:
    explicit OvercommitWorkload(const WorkloadConfig &cfg = {})
        : Workload(cfg)
    {
        regions_.push_back({kWsBytes + 8 * kMiB, kWsBytes});
    }

    std::string name() const override { return "overcommit"; }

    MemAccess
    nextAccess(Rng &rng) override
    {
        // A slowly-moving hot pointer plus a streaming cursor, both
        // confined to the hot prefix.
        if (rng.chance(0.02))
            hot_ = rng.below(kHotBytes) & ~std::uint64_t{63};
        cursor_ += 64;
        if (rng.chance(0.75))
            return {0x400000, at(0, cursor_ % kHotBytes)};
        return {0x400040, at(0, hot_)};
    }

  protected:
    void
    touchPattern(Process &proc) override
    {
        proc.touchRange(base(0), kWsBytes);   // fills memory, evicts
        proc.touchRange(base(0), kHotBytes);  // refaults the hot set
    }

  private:
    std::uint64_t cursor_ = 0;
    std::uint64_t hot_ = 0;
};

std::uint64_t
statSum(const std::atomic<std::uint64_t> &a)
{
    return a.load(std::memory_order_relaxed);
}

} // namespace

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("fig_overcommit", argc, argv);
    out.note("phys_mib", kPhysBytes / kMiB);
    out.note("working_set_mib", kWsBytes / kMiB);
    out.note("hot_mib", kHotBytes / kMiB);

    Report act("Overcommit (WS = 1.6x phys) — reclaim activity");
    act.header({"policy", "victims", "faults", "reclaimed", "swapout",
                "refault", "thp-split", "direct", "kswapd"});

    Report frag("Overcommit — surviving contiguity & translation");
    frag.header({"policy", "victims", "cov32", "fmfi", "largest",
                 "swapped", "spot-ovh"});

    const std::vector<PolicyKind> kinds{PolicyKind::Ca,
                                        PolicyKind::Ranger};
    for (PolicyKind kind : kinds) {
        for (bool contig_aware : {false, true}) {
            NativeSystem sys(kind, 7, [&](KernelConfig &cfg) {
                cfg.phys.bytesPerNode = kNodeBytes;
                cfg.phys.numNodes = kNodes;
                cfg.reclaimEnabled = true;
                cfg.kswapdEnabled = true;
                cfg.contigAwareReclaim = contig_aware;
            });
            OvercommitWorkload wl({1.0, 7});
            ContigRunResult r = sys.run(wl);

            // Daemon epochs may have evicted part of the hot set;
            // re-touch it so the replayed addresses are all mapped.
            wl.process()->touchRange(wl.vmas()[0]->start(), kHotBytes);
            XlatRunResult x = runTranslation(wl, nullptr,
                                             XlatScheme::Spot,
                                             kXlatAccesses, 99);

            Kernel &kernel = sys.kernel();
            const ReclaimEngine *rec = kernel.reclaim();
            const ReclaimStats &rs = rec->stats();
            const std::string victims = contig_aware ? "contig" : "lru";

            act.row({policyName(kind), victims,
                     Report::num(static_cast<double>(r.faults), 0),
                     Report::num(statSum(rs.reclaimed), 0),
                     Report::num(statSum(rs.swapOuts), 0),
                     Report::num(statSum(rs.refaults), 0),
                     Report::num(statSum(rs.thpSplits), 0),
                     Report::num(statSum(rs.directReclaims), 0),
                     Report::num(statSum(rs.kswapdRuns), 0)});

            double fmfi = 0.0;
            std::uint64_t largest = 0;
            const PhysicalMemory &pm = kernel.physMem();
            for (unsigned n = 0; n < pm.numNodes(); ++n) {
                const Zone &zone = pm.zone(n);
                fmfi += zone.buddy().unusableFreeIndex(kHugeOrder);
                if (auto big = zone.contigMap().largest())
                    largest = std::max(largest, big->pages);
            }
            fmfi /= pm.numNodes();
            frag.row({policyName(kind), victims,
                      Report::pct(r.final.cov32), Report::num(fmfi, 3),
                      Report::num(static_cast<double>(largest) *
                                      kPageSize / kMiB, 1) + "M",
                      Report::num(statSum(rs.swapOuts) -
                                      statSum(rs.refaults), 0),
                      Report::pct(x.overhead.overhead)});

            sys.finish(wl);
        }
    }

    out.add(act);
    out.add(frag);
    act.print();
    std::printf("\n");
    frag.print();

    std::printf("\nexpected: every cell completes (the slow path "
                "escalates wake-kswapd -> direct reclaim instead of "
                "OOM); for CA, contig-aware victims preserve mapped "
                "contiguity — cov32 stays near 100%% and SpOT "
                "overhead near zero at comparable swap volume, where "
                "plain LRU shreds half the huge mappings\n");
    out.write();
    return 0;
}
