/**
 * @file
 * Contiguity analytics: extraction of maximal contiguous mappings
 * (1-D native, 2-D virtualized via gPT ⋈ nPT composition — the
 * paper's VMI tool), and the metrics of §VI-A: memory-footprint
 * coverage of the K largest mappings and the number of mappings
 * needed to cover 99% of the footprint. Also the free-block size
 * distribution of Fig. 9.
 */

#ifndef CONTIG_CONTIG_ANALYSIS_HH
#define CONTIG_CONTIG_ANALYSIS_HH

#include <cstdint>
#include <vector>

#include "base/stats.hh"
#include "mm/page_table.hh"

namespace contig
{

class PhysicalMemory;
class VirtualMachine;
class Process;

/**
 * One maximal contiguous mapping: `pages` virtually consecutive base
 * pages mapped to physically consecutive frames. In virtualized
 * extraction, vpn is a gVA page and pfn a host frame (full 2-D).
 */
struct Seg
{
    Vpn vpn = 0;
    Pfn pfn = 0;
    std::uint64_t pages = 0;

    std::int64_t
    offset() const
    {
        return static_cast<std::int64_t>(vpn) -
               static_cast<std::int64_t>(pfn);
    }
};

/**
 * Extract maximal contiguous mappings from one page table (native:
 * VA -> PA). Adjacent leaves merge when virtually consecutive and
 * sharing the same offset.
 */
std::vector<Seg> extractSegs(const PageTable &pt);

/**
 * Extract full 2-D (gVA -> hPA) maximal contiguous mappings of a
 * guest process running inside a VM: compose each guest leaf with the
 * nested mappings covering its gPA range, then merge (the in-house
 * VMI tool of §V).
 */
std::vector<Seg> extract2d(const Process &guest_proc,
                           const VirtualMachine &vm);

/** The coverage metrics of Figs. 7/8/10/12. */
struct CoverageMetrics
{
    std::uint64_t totalPages = 0;    //!< mapped footprint
    std::uint64_t mappings = 0;      //!< number of contiguous mappings
    double cov32 = 0.0;              //!< fraction covered by 32 largest
    double cov128 = 0.0;             //!< fraction covered by 128 largest
    std::uint64_t mappingsFor99 = 0; //!< mappings to reach 99 %
};

/** Compute the metrics from an extracted segment list. */
CoverageMetrics coverage(const std::vector<Seg> &segs);

/**
 * Fraction of `total_pages` covered by the `k` largest segments
 * (Fig. 1b/1c/10 use k = 32).
 */
double coverageTopK(const std::vector<Seg> &segs, std::uint64_t k);

/**
 * Free-block size distribution (Fig. 9): a log2 histogram of the
 * machine's free *unaligned* cluster sizes, weighted by pages. Sizes
 * below the top-order block granularity are accounted from the buddy
 * free lists directly.
 */
Log2Histogram freeBlockDistribution(const PhysicalMemory &pm);

/**
 * Timeline sampler: averages coverage metrics over an execution by
 * sampling at a fixed fault cadence (the "averaged throughout
 * application's execution time" of §VI-A).
 */
class CoverageTimeline
{
  public:
    void
    addSample(const CoverageMetrics &m)
    {
        samples_.push_back(m);
    }

    const std::vector<CoverageMetrics> &samples() const
    { return samples_; }

    /** Time-averaged metrics across all samples. */
    CoverageMetrics average() const;

  private:
    std::vector<CoverageMetrics> samples_;
};

} // namespace contig

#endif // CONTIG_CONTIG_ANALYSIS_HH
