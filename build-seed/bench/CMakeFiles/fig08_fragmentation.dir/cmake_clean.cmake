file(REMOVE_RECURSE
  "CMakeFiles/fig08_fragmentation.dir/fig08_fragmentation.cc.o"
  "CMakeFiles/fig08_fragmentation.dir/fig08_fragmentation.cc.o.d"
  "fig08_fragmentation"
  "fig08_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
