file(REMOVE_RECURSE
  "CMakeFiles/fig14_spot_breakdown.dir/fig14_spot_breakdown.cc.o"
  "CMakeFiles/fig14_spot_breakdown.dir/fig14_spot_breakdown.cc.o.d"
  "fig14_spot_breakdown"
  "fig14_spot_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_spot_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
