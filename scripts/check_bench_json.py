#!/usr/bin/env python3
"""Validate a bench binary's --json output against the documented schema.

Usage: check_bench_json.py <bench-binary> [extra args...]

Runs the bench with --json into a temp file and checks the document is
valid JSON of shape {bench, config, rows, metrics}:
  - "bench" is a non-empty string,
  - "config" is an object with the scaled-machine geometry keys,
  - "rows" is a list of objects each tagged with its "table" caption,
  - "metrics" is an object of MetricRegistry samples (counters/gauges
    as numbers, summaries as {count, sum, min, max, mean}, histograms
    as {log2_buckets: [...]}).

Registered as a ctest so the schema cannot drift silently.
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path


def fail(msg):
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_metric(name, value):
    if isinstance(value, (int, float)):
        return
    if not isinstance(value, dict):
        fail(f"metric {name!r} is neither number nor object: {value!r}")
    if "log2_buckets" in value:
        if not all(isinstance(b, (int, float))
                   for b in value["log2_buckets"]):
            fail(f"histogram {name!r} has non-numeric buckets")
        return
    missing = {"count", "sum", "min", "max", "mean"} - value.keys()
    if missing:
        fail(f"summary {name!r} missing keys {sorted(missing)}")


def main():
    if len(sys.argv) < 2:
        fail("usage: check_bench_json.py <bench-binary> [args...]")
    bench = Path(sys.argv[1])
    if not bench.exists():
        fail(f"bench binary not found: {bench}")

    with tempfile.TemporaryDirectory() as tmp:
        out_path = Path(tmp) / "out.json"
        cmd = [str(bench), *sys.argv[2:], "--json", str(out_path)]
        proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, timeout=600)
        if proc.returncode != 0:
            fail(f"{' '.join(cmd)} exited {proc.returncode}:\n"
                 f"{proc.stdout.decode(errors='replace')[-2000:]}")
        if not out_path.exists():
            fail("bench did not create the --json file")
        try:
            doc = json.loads(out_path.read_text())
        except json.JSONDecodeError as e:
            fail(f"output is not valid JSON: {e}")

    for key in ("bench", "config", "rows", "metrics"):
        if key not in doc:
            fail(f"missing top-level key {key!r}")

    if not isinstance(doc["bench"], str) or not doc["bench"]:
        fail("'bench' must be a non-empty string")

    config = doc["config"]
    if not isinstance(config, dict):
        fail("'config' must be an object")
    for key in ("host_nodes", "host_node_bytes"):
        if key not in config:
            fail(f"'config' missing {key!r}")

    rows = doc["rows"]
    if not isinstance(rows, list) or not rows:
        fail("'rows' must be a non-empty list")
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            fail(f"row {i} is not an object")
        if "table" not in row:
            fail(f"row {i} has no 'table' caption tag")

    metrics = doc["metrics"]
    if not isinstance(metrics, dict) or not metrics:
        fail("'metrics' must be a non-empty object")
    for name, value in metrics.items():
        check_metric(name, value)

    print(f"check_bench_json: OK: {doc['bench']}: {len(rows)} rows, "
          f"{len(metrics)} metrics")


if __name__ == "__main__":
    main()
