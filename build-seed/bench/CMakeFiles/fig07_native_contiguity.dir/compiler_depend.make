# Empty compiler generated dependencies file for fig07_native_contiguity.
# This may be replaced when dependencies are built.
