/**
 * @file
 * The FaultEngine: the demand-paging pipeline between the MMU-facing
 * entry points (Process::touch, readFile, fork, nested backing) and
 * the AllocationPolicy / buddy allocator. Every fault flows through
 * the same explicit stages:
 *
 *   classify -> granularity decision -> policy placement ->
 *   claim/zero-copy -> PTE install -> post-map hooks
 *
 * carried by a FaultRequest (what the caller wants resolved) and a
 * FaultContext (what each stage decided). The engine owns the fault
 * statistics, the fault/daemon phase timers and the policy-daemon
 * clock; the Kernel shrinks to ownership and frame/metadata services.
 *
 * Besides the single-fault path, the engine has a first-class batch
 * path: handleRange() resolves a whole vpn span with one VMA lookup,
 * tick-aligned chunks of policy allocateBatch() calls, and grouped
 * PTE installs (PageTable::RunMapper). The host kernel, guest
 * kernels (nested backing faults), the page cache (readahead fills)
 * and fork's COW sharing all go through this one pipeline; see
 * DESIGN.md "Fault pipeline" for the batching contract policies must
 * honor. `KernelConfig::faultBatching = false` degrades every batch
 * entry point to the per-fault loop, which the golden-equivalence
 * test uses to prove the two paths produce identical placements.
 *
 * Concurrency (KernelConfig::threads > 1): the engine is re-entrant.
 * Fault entry points take the kernel's mm lock shared, then the
 * faulted VMA's fault mutex; worker threads bind per-thread fault
 * statistics through a WorkerScope (absorbed into the engine totals
 * on scope exit) and the simulated clock becomes one atomic counter.
 * Policy-daemon ticks and observatory samples cannot run under a
 * shared lock, so threaded runs defer them: drainPendingTicks()
 * catches up under the exclusive lock at the next fault entry. With
 * threads == 1 none of this engages and the sequential path is
 * bit-identical to the pre-threading engine (enforced by the
 * parallel golden-equivalence test). See DESIGN.md "Concurrency
 * model" for the full lock hierarchy.
 */

#ifndef CONTIG_MM_FAULT_ENGINE_HH
#define CONTIG_MM_FAULT_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "base/stats.hh"
#include "base/sync.hh"
#include "base/types.hh"
#include "mm/policy.hh"
#include "mm/process.hh"
#include "obs/phase.hh"

namespace contig
{

class File;
class Kernel;
struct KernelConfig;
struct Mapping;

namespace obs
{
class FaultAttribution;
class StateSampler;
} // namespace obs

/** What a fault resolves. */
enum class FaultKind : std::uint8_t
{
    Anon, //!< first touch of anonymous memory (zero-filled)
    Cow,  //!< write to a shared mapping (copy + remap)
    File, //!< first touch of a file mapping (page-cache lookup)
};

/** How handleRange() accounts touched pages. */
enum class TouchNote : std::uint8_t
{
    /** Every page of the span counts as touched (touchRange). */
    AllPages,
    /**
     * Only fault origins count: one probe per huge stride plus a
     * sweep of still-unmapped pages — the nested-backing semantics
     * (a guest frame allocation touches the host once per huge
     * region it spans, not once per page).
     */
    Origins,
};

/** Aggregate fault-path statistics (Table V inputs). */
struct FaultStats
{
    std::uint64_t faults = 0;
    std::uint64_t hugeFaults = 0;
    std::uint64_t baseFaults = 0;
    std::uint64_t cowFaults = 0;
    std::uint64_t fileFaults = 0;
    Cycles totalCycles = 0;
    Percentiles latencyUs;

    /** Absorb a worker thread's stats (WorkerScope join). */
    void
    mergeFrom(const FaultStats &other)
    {
        faults += other.faults;
        hugeFaults += other.hugeFaults;
        baseFaults += other.baseFaults;
        cowFaults += other.cowFaults;
        fileFaults += other.fileFaults;
        totalCycles += other.totalCycles;
        latencyUs.merge(other.latencyUs);
    }
};

/** One fault, as reported to experiment observers. */
struct FaultEvent
{
    Process *proc = nullptr;
    Vma *vma = nullptr;
    Vpn vpn = 0;
    Pfn pfn = kInvalidPfn;
    unsigned order = 0;
    bool cow = false;
    bool file = false;
};

/**
 * What a caller asks the engine to resolve: a vpn span of one
 * process. `vma` is an optional hint; spans may cross VMA boundaries
 * (the engine re-resolves per VMA).
 */
struct FaultRequest
{
    Process *proc = nullptr;
    Vma *vma = nullptr;
    Vpn vpn = 0;
    std::uint64_t pages = 1;
    Access access = Access::Write;
};

/**
 * Per-fault resolution state flowing through the pipeline stages:
 * classify fills kind, the granularity stage fills base/order, the
 * placement stage fills alloc (and fallback when a huge request was
 * demoted), the accounting stage fills cycles.
 */
struct FaultContext
{
    FaultKind kind = FaultKind::Anon;
    Vpn vpn = 0;        //!< faulting page (the origin)
    Vpn base = 0;       //!< order-aligned install base
    unsigned order = 0; //!< resolved granularity (0 or kHugeOrder)
    AllocResult alloc;
    AllocFail fallback = AllocFail::None; //!< demotion reason, if any
    Cycles cycles = 0;
};

/** Batch-path observability ("fault.batch.*"). */
struct FaultBatchStats
{
    std::uint64_t rangeRequests = 0; //!< handleRange() calls
    std::uint64_t rangePages = 0;    //!< pages those spans covered
    std::uint64_t chunks = 0;        //!< tick-aligned commit chunks
    std::uint64_t batchedFaults = 0; //!< faults resolved via allocateBatch
    Log2Histogram chunkPages;        //!< chunk-size distribution
    /** Pages filled per page-cache readahead batch. */
    Log2Histogram readaheadPages;

    /** Absorb a worker thread's stats (WorkerScope join). */
    void
    mergeFrom(const FaultBatchStats &other)
    {
        rangeRequests += other.rangeRequests;
        rangePages += other.rangePages;
        chunks += other.chunks;
        batchedFaults += other.batchedFaults;
        chunkPages.mergeFrom(other.chunkPages);
        readaheadPages.mergeFrom(other.readaheadPages);
    }
};

class FaultEngine
{
  public:
    explicit FaultEngine(Kernel &kernel);

    /** Folds the cost-attribution table into AttribRegistry::global(). */
    ~FaultEngine();

    FaultEngine(const FaultEngine &) = delete;
    FaultEngine &operator=(const FaultEngine &) = delete;

    // --- single-fault path ----------------------------------------------

    /** The access entry point: fault / COW-resolve vpn as needed. */
    void touch(Process &proc, Gva gva, Access access);

    // --- batch paths ----------------------------------------------------

    /**
     * Resolve every fault a walk of the span would raise. With
     * KernelConfig::faultBatching this runs the batched pipeline
     * (one VMA lookup, allocateBatch chunks that never cross a
     * policy-tick boundary, grouped installs); without it, the exact
     * per-fault loop. Placements, fault statistics and policy state
     * are identical either way.
     */
    void handleRange(const FaultRequest &span,
                     TouchNote note = TouchNote::AllPages);

    /**
     * read()-style page-cache population for [page_start,
     * page_start + n_pages): batched readahead-window fills, the
     * placement steered per batch (not per page) when the policy
     * steers file placement. Fatal if a requested page cannot be
     * cached.
     */
    void readFile(File &file, std::uint64_t page_start,
                  std::uint64_t n_pages);

    /**
     * Ensure file_page (and its readahead window) is cached; returns
     * its frame, or kInvalidPfn on OOM. Caller must hold the fault
     * entry locks (internal to the engine / kernel).
     */
    Pfn ensureFileCached(File &file, std::uint64_t file_page);

    /**
     * fork(): COW-share every leaf of parent's pvma into the child's
     * already-created cvma (write-protect parent, map shared in
     * child, bump share counts).
     */
    void shareCowRange(Process &parent, Process &child, Vma &pvma,
                       Vma &cvma);

    // --- services for pre-populating policies (eager paging) ------------

    /**
     * Claim a buddy block the policy already allocated and install it
     * over [vpn, vpn + 2^order), at 2 MiB grain where alignment
     * allows, 4 KiB otherwise (grouped installs).
     */
    void installPrepared(Process &proc, Vma &vma, Vpn vpn, Pfn pfn,
                         unsigned order);

    /**
     * Charge one bulk fault-like stall for `pages` freshly zeroed
     * pages (eager paging's mmap stall: one fault event, the whole
     * zeroing cost).
     */
    void chargeBulkStall(std::uint64_t pages);

    // --- threading -------------------------------------------------------

    /**
     * Binds the calling thread as fault worker `cpu` for the scope's
     * lifetime: faults it raises go to thread-private FaultStats (no
     * sharing, no atomics) and its order-0 allocations use pcp cache
     * `cpu`. On destruction the private stats merge into the engine
     * totals under the stats lock. Scopes of different threads may
     * overlap freely; one thread must not nest scopes of the same
     * engine.
     */
    class WorkerScope
    {
      public:
        WorkerScope(FaultEngine &engine, int cpu);
        ~WorkerScope();
        WorkerScope(const WorkerScope &) = delete;
        WorkerScope &operator=(const WorkerScope &) = delete;

      private:
        FaultEngine &engine_;
        FaultStats stats_;
        FaultBatchStats batch_;
        /** Thread-private cost attribution (--attrib runs only). */
        std::unique_ptr<obs::FaultAttribution> attrib_;
        ThisCpu::Scope cpuScope_;
    };

    /**
     * Run the policy-daemon ticks and observatory samples that
     * concurrent faults deferred (threaded runs cannot tick under a
     * shared lock). Takes the kernel's mm lock exclusive when work is
     * due; the caller must hold no engine/kernel lock. No-op when
     * threads == 1 (ticks run inline, exactly as before).
     */
    void drainPendingTicks();

    /** True when this engine was configured for concurrent faults. */
    bool threaded() const { return threaded_; }

    // --- clock / observation --------------------------------------------

    /** Simulated time = faults handled so far (all threads). */
    std::uint64_t
    now() const
    {
        return clock_.load(std::memory_order_relaxed);
    }

    FaultStats &stats() { return stats_; }
    const FaultStats &stats() const { return stats_; }
    const FaultBatchStats &batchStats() const { return batch_; }

    /**
     * Register/clear the observatory sampler ticked after every
     * fault (StateSampler::attachKernel). Costs the fault path one
     * null-pointer branch while cleared.
     */
    void setSampler(obs::StateSampler *sampler) { sampler_ = sampler; }
    obs::StateSampler *sampler() const { return sampler_; }

    /** Report fault.batch.* / readahead metrics (kernel-scoped). */
    void collectMetrics(obs::MetricSink &sink) const;

  private:
    // --- pipeline stages -------------------------------------------------

    /** Granularity decision for an anon fault at vpn (THP or 4 KiB). */
    void classifyAnon(Process &proc, Vma &vma, FaultContext &ctx) const;
    /** Policy placement incl. direct reclaim and huge demotion. */
    void placeAnon(Process &proc, Vma &vma, FaultContext &ctx);
    /**
     * Memory-pressure escalation for a failed allocation at (base,
     * order): wake kswapd, then up to four direct-reclaim rounds with
     * an allocation retry after each, then dropping the clean page
     * cache as the last resort before the caller declares OOM. Adds
     * the reclaim stall to res.placementCycles on success. Reclaim
     * kernels only (kernel_.reclaim() != nullptr).
     */
    void reclaimRetry(Process &proc, Vma &vma, Vpn base, unsigned order,
                      AllocResult &res);
    /** claim + PTE install + accounting for a resolved anon fault. */
    void installAnon(Process &proc, Vma &vma, FaultContext &ctx);

    /** touch() body; caller holds the shared mm lock (if threaded). */
    void touchLocked(Process &proc, Gva gva, Access access);

    void anonFault(Process &proc, Vma &vma, Vpn vpn);
    void cowFault(Process &proc, Vma &vma, Vpn vpn, const Mapping &m);
    void fileFault(Process &proc, Vma &vma, Vpn vpn);
    void finishFault(Process &proc, Vma &vma, Vpn vpn, Pfn pfn,
                     unsigned order, Cycles cycles, bool cow, bool file,
                     AllocFail fallback = AllocFail::None);

    // --- batch internals -------------------------------------------------

    /** Per-fault reference loop (faultBatching off / golden arm). */
    void resolveSpanSingle(Process &proc, const FaultRequest &span,
                           TouchNote note);
    /** Batched resolution of [start, end) inside one VMA. */
    void resolveSpan(Process &proc, Vma &vma, Vpn start, Vpn end,
                     Access access, bool note_all);
    Vpn resolveAnonGap(Process &proc, Vma &vma, Vpn gap_start,
                       Vpn gap_end, Vpn span_end, bool note_all);
    void resolveFileGap(Process &proc, Vma &vma, Vpn gap_start,
                        Vpn gap_end);
    /** Allocate + install + finish the queued order-0 slots. */
    void commitAnonChunk(Process &proc, Vma &vma,
                         std::vector<FaultSlot> &slots);
    /** Faults remaining until the next policy tick (always >= 1). */
    std::uint64_t tickBudget() const;

    /**
     * Fill every uncached page of [begin, end) of `file`, consulting
     * steersFilePlacement() once and allocating uncached runs through
     * allocateFileRange(). Stops at the first allocation failure.
     */
    void fillFileSpan(File &file, std::uint64_t begin, std::uint64_t end);

    /** ensureFileCached() body; caller holds the page-cache lock. */
    Pfn ensureFileCachedLocked(File &file, std::uint64_t file_page);

    // --- threading internals ---------------------------------------------

    /** This thread runs inside a WorkerScope of this engine. */
    bool
    inWorker() const
    {
        return tlsOwner_ == this && tlsStats_ != nullptr;
    }

    /** The FaultStats the current thread accumulates into. */
    FaultStats &
    curStats()
    {
        return inWorker() ? *tlsStats_ : stats_;
    }

    FaultBatchStats &
    curBatch()
    {
        return inWorker() ? *tlsBatch_ : batch_;
    }

    /**
     * True while any WorkerScope is live: the sequential-only work in
     * finishFault (observer, sampler, inline tick) must not run.
     */
    bool
    workersActive() const
    {
        return activeWorkers_.load(std::memory_order_relaxed) != 0;
    }

    Kernel &kernel_;
    const KernelConfig &cfg_;
    const bool threaded_;
    FaultStats stats_;
    FaultBatchStats batch_;
    /**
     * (kind x order x fallback) cost attribution; null unless
     * AttribRegistry::enabled() when the engine was built. Worker
     * threads accumulate into their WorkerScope's private table
     * (tlsAttrib_) and merge under statsLock_ on scope exit.
     */
    std::unique_ptr<obs::FaultAttribution> attrib_;
    obs::StateSampler *sampler_ = nullptr;

    /** Simulated clock: faults completed, all threads. */
    std::atomic<std::uint64_t> clock_{0};
    /** Policy-daemon ticks executed (inline or via drain). */
    std::atomic<std::uint64_t> ticksRun_{0};
    /** Faults the sampler has been shown. */
    std::atomic<std::uint64_t> samplerSeen_{0};
    std::atomic<std::uint32_t> activeWorkers_{0};
    /** Serializes WorkerScope joins into stats_/batch_. */
    SpinLock statsLock_;

    inline static thread_local FaultEngine *tlsOwner_ = nullptr;
    inline static thread_local FaultStats *tlsStats_ = nullptr;
    inline static thread_local FaultBatchStats *tlsBatch_ = nullptr;
    inline static thread_local obs::FaultAttribution *tlsAttrib_ = nullptr;

    /** Phase timers (fault path, policy daemons, batch stages). */
    obs::Phase faultPhase_;
    obs::Phase daemonPhase_;
    obs::Phase placePhase_;
    obs::Phase installPhase_;
    obs::Phase fillPhase_;
};

} // namespace contig

#endif // CONTIG_MM_FAULT_ENGINE_HH
