file(REMOVE_RECURSE
  "CMakeFiles/test_perfmodel.dir/perfmodel/model_test.cc.o"
  "CMakeFiles/test_perfmodel.dir/perfmodel/model_test.cc.o.d"
  "test_perfmodel"
  "test_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
