file(REMOVE_RECURSE
  "CMakeFiles/micro_tlb_spot.dir/micro_tlb_spot.cc.o"
  "CMakeFiles/micro_tlb_spot.dir/micro_tlb_spot.cc.o.d"
  "micro_tlb_spot"
  "micro_tlb_spot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tlb_spot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
