/**
 * @file
 * Lightweight statistics primitives: named counters, scalar summaries
 * (mean/min/max), exact-percentile reservoirs and log2-bucketed
 * histograms. Every subsystem exposes a Stats-like struct built from
 * these so benches and tests can interrogate behaviour.
 */

#ifndef CONTIG_BASE_STATS_HH
#define CONTIG_BASE_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace contig
{

/**
 * Scalar summary accumulator: count, sum, min, max and mean of a
 * stream of samples.
 */
class Summary
{
  public:
    void
    add(double x)
    {
        if (count_ == 0 || x < min_)
            min_ = x;
        if (count_ == 0 || x > max_)
            max_ = x;
        sum_ += x;
        ++count_;
    }

    /** Fold another summary's samples into this one. */
    void
    merge(const Summary &other)
    {
        if (other.count_ == 0)
            return;
        if (count_ == 0 || other.min_ < min_)
            min_ = other.min_;
        if (count_ == 0 || other.max_ > max_)
            max_ = other.max_;
        sum_ += other.sum_;
        count_ += other.count_;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    void reset() { *this = Summary{}; }

    /**
     * Raw accumulator state for checkpoint/restore: unlike min()/max()
     * this round-trips the empty summary exactly.
     */
    struct Raw
    {
        std::uint64_t count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
    };

    Raw raw() const { return {count_, sum_, min_, max_}; }

    void
    setRaw(const Raw &r)
    {
        count_ = r.count;
        sum_ = r.sum;
        min_ = r.min;
        max_ = r.max;
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Exact percentile tracker. Stores all samples; fine for the
 * page-fault-latency scale of this simulator (tens of thousands of
 * samples per run).
 */
class Percentiles
{
  public:
    void add(double x) { samples_.push_back(x); sorted_ = false; }

    /**
     * Value at quantile q using linear interpolation between closest
     * ranks (the "R-7" definition numpy/Excel default to): with n
     * sorted samples, quantile(q) = s[i] + frac * (s[i+1] - s[i])
     * where i = floor(q * (n-1)) and frac is the fractional part.
     * q is clamped into [0, 1]; NaN is treated as 0. Returns 0 if no
     * samples were added.
     */
    double quantile(double q);

    /** Fold another reservoir's samples into this one. */
    void
    merge(const Percentiles &other)
    {
        if (other.samples_.empty())
            return;
        samples_.insert(samples_.end(), other.samples_.begin(),
                        other.samples_.end());
        sorted_ = false;
    }

    std::size_t count() const { return samples_.size(); }
    void reset() { samples_.clear(); sorted_ = false; }

  private:
    std::vector<double> samples_;
    bool sorted_ = false;
};

/**
 * Power-of-two bucketed histogram over unsigned values: bucket i counts
 * samples in [2^i, 2^(i+1)). Used e.g. for the free-block size
 * distribution of Fig. 9.
 */
class Log2Histogram
{
  public:
    void add(std::uint64_t value, std::uint64_t weight = 1);

    /** Count (weighted) in bucket for values whose log2 floor is i. */
    std::uint64_t bucket(unsigned i) const;
    unsigned numBuckets() const { return buckets_.size(); }
    std::uint64_t totalWeight() const { return total_; }
    void reset() { buckets_.clear(); total_ = 0; }

    /**
     * Bucket-interpolated quantile estimate. With W = totalWeight(),
     * the target rank is q * W; walking buckets in order, the bucket b
     * where the cumulative weight crosses the target contributes
     * lo_b + frac * (hi_b - lo_b), where [lo_b, hi_b) is the bucket's
     * value span ([0, 2) for bucket 0, [2^b, 2^(b+1)) above) and frac
     * is the target's fractional position inside the bucket's weight.
     * Exact to within one bucket span; q is clamped into [0, 1] (NaN
     * treated as 0) and the empty histogram reports 0.
     */
    double percentile(double q) const;

    /** Add another histogram bucket-wise. */
    void mergeFrom(const Log2Histogram &other);

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t total_ = 0;
};

/**
 * A flat registry of named counters. Subsystems register deltas; the
 * experiment drivers snapshot and print them. Lookups are
 * heterogeneous (transparent comparator), so incrementing with a
 * string literal or std::string_view from a hot path allocates only
 * on the first increment of a new name.
 */
class CounterSet
{
  public:
    using Map = std::map<std::string, std::uint64_t, std::less<>>;

    void
    inc(std::string_view name, std::uint64_t by = 1)
    {
        auto it = counters_.find(name);
        if (it == counters_.end())
            counters_.emplace(std::string(name), by);
        else
            it->second += by;
    }

    std::uint64_t
    get(std::string_view name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    const Map &all() const { return counters_; }

    void reset() { counters_.clear(); }

  private:
    Map counters_;
};

/** Geometric mean of a set of positive values; 0 if empty. */
double geomean(const std::vector<double> &values);

} // namespace contig

#endif // CONTIG_BASE_STATS_HH
