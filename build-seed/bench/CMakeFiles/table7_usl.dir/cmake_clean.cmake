file(REMOVE_RECURSE
  "CMakeFiles/table7_usl.dir/table7_usl.cc.o"
  "CMakeFiles/table7_usl.dir/table7_usl.cc.o.d"
  "table7_usl"
  "table7_usl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_usl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
