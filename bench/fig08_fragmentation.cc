/**
 * @file
 * Reproduces Fig. 8: contiguity under external fragmentation. The
 * hog micro-benchmark pins 0/10/25/50 % of memory in scattered 2-4 MiB
 * chunks before each workload runs; geometric-mean coverage metrics
 * are reported per policy and pressure level (BT excluded — its
 * footprint does not fit the hogged machine, as in the paper).
 * Expected shape: THP/Ingens flat and poor; eager collapses as
 * pressure grows (aligned blocks vanish); CA stays close to ideal by
 * harvesting unaligned contiguity; ranger stays high via migrations.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/bench_io.hh"
#include "core/report.hh"

using namespace contig;

namespace
{

const std::vector<PolicyKind> kPolicies{
    PolicyKind::Thp,   PolicyKind::Ingens, PolicyKind::Ca,
    PolicyKind::Eager, PolicyKind::Ranger, PolicyKind::Ideal};

const std::vector<double> kPressure{0.0, 0.10, 0.25, 0.50};

/** All workloads except BT (does not fit under hog-50). */
std::vector<std::string>
workloads()
{
    std::vector<std::string> out;
    for (const auto &n : paperWorkloads())
        if (n != "bt")
            out.push_back(n);
    return out;
}

/**
 * The paper excludes hashjoin from eager paging (its pre-allocation
 * bloat does not fit); we do the same.
 */
bool
excluded(PolicyKind kind, const std::string &name)
{
    return kind == PolicyKind::Eager && name == "hashjoin";
}

} // namespace

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("fig08_fragmentation", argc, argv);

    Report rep("Fig. 8 — contiguity under memory pressure "
               "(geomean over svm/pagerank/hashjoin/xsbench)");
    rep.header({"hog", "policy", "cov32", "cov128", "maps-for-99%"});

    for (double pressure : kPressure) {
        for (PolicyKind kind : kPolicies) {
            std::vector<double> c32, c128, m99;
            for (const auto &name : workloads()) {
                if (excluded(kind, name))
                    continue;
                NativeSystem sys(kind, 7);
                if (pressure > 0.0)
                    sys.hog(pressure);
                auto wl = makeWorkload(name, {1.0, 7});
                auto r = sys.run(*wl);
                c32.push_back(std::max(r.avg.cov32, 1e-6));
                c128.push_back(std::max(r.avg.cov128, 1e-6));
                m99.push_back(static_cast<double>(
                    std::max<std::uint64_t>(r.avg.mappingsFor99, 1)));
                sys.finish(*wl);
            }
            char hog[16];
            std::snprintf(hog, sizeof(hog), "hog-%.0f%%",
                          pressure * 100);
            rep.row({hog, policyName(kind), Report::pct(geomean(c32)),
                     Report::pct(geomean(c128)),
                     Report::num(geomean(m99), 1)});
        }
    }
    out.add(rep);
    rep.print();

    std::printf("\npaper: CA covers ~94%% with 128 mappings under "
                "hog-50 and tracks ideal; eager degrades sharply; "
                "THP/Ingens unaffected but poor throughout\n");
    out.write();
    return 0;
}
