#include "contig/analysis.hh"

#include <algorithm>

#include "base/logging.hh"
#include "mm/process.hh"
#include "phys/phys_mem.hh"
#include "virt/vm.hh"

namespace contig
{

namespace
{

/** Append a run to segs, merging with the last when contiguous. */
void
appendRun(std::vector<Seg> &segs, Vpn vpn, Pfn pfn, std::uint64_t pages)
{
    if (!segs.empty()) {
        Seg &last = segs.back();
        if (last.vpn + last.pages == vpn &&
            last.pfn + last.pages == pfn) {
            last.pages += pages;
            return;
        }
    }
    segs.push_back(Seg{vpn, pfn, pages});
}

} // namespace

std::vector<Seg>
extractSegs(const PageTable &pt)
{
    std::vector<Seg> segs;
    pt.forEachLeaf([&](Vpn vpn, const Mapping &m) {
        appendRun(segs, vpn, m.pfn, pagesInOrder(m.order));
    });
    return segs;
}

std::vector<Seg>
extract2d(const Process &guest_proc, const VirtualMachine &vm)
{
    std::vector<Seg> segs;
    guest_proc.pageTable().forEachLeaf([&](Vpn vpn, const Mapping &m) {
        // Compose this guest leaf with the nested mappings that back
        // its guest-frame range.
        const std::uint64_t n = pagesInOrder(m.order);
        std::uint64_t off = 0;
        while (off < n) {
            auto nested = vm.nestedLookup(m.pfn + off);
            if (!nested) {
                ++off; // unbacked guest frame: skip
                continue;
            }
            // The nested leaf covers the guest frames up to its end.
            const std::uint64_t nested_pages = pagesInOrder(nested->order);
            const Vpn host_vpn = vm.hostVpnFor(m.pfn + off);
            const Vpn nested_base = host_vpn & ~(nested_pages - 1);
            std::uint64_t span = nested_base + nested_pages - host_vpn;
            span = std::min(span, n - off);
            appendRun(segs, vpn + off, nested->pfn, span);
            off += span;
        }
    });
    return segs;
}

CoverageMetrics
coverage(const std::vector<Seg> &segs)
{
    CoverageMetrics m;
    m.mappings = segs.size();
    std::vector<std::uint64_t> sizes;
    sizes.reserve(segs.size());
    for (const Seg &s : segs) {
        m.totalPages += s.pages;
        sizes.push_back(s.pages);
    }
    if (m.totalPages == 0)
        return m;
    std::sort(sizes.begin(), sizes.end(), std::greater<>());

    std::uint64_t acc = 0;
    const std::uint64_t target99 =
        (m.totalPages * 99 + 99) / 100; // ceil(0.99 * total)
    bool found99 = false;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        acc += sizes[i];
        if (i + 1 == 32)
            m.cov32 = static_cast<double>(acc) / m.totalPages;
        if (i + 1 == 128)
            m.cov128 = static_cast<double>(acc) / m.totalPages;
        if (!found99 && acc >= target99) {
            m.mappingsFor99 = i + 1;
            found99 = true;
        }
    }
    if (sizes.size() < 32)
        m.cov32 = 1.0;
    if (sizes.size() < 128)
        m.cov128 = 1.0;
    return m;
}

double
coverageTopK(const std::vector<Seg> &segs, std::uint64_t k)
{
    std::vector<std::uint64_t> sizes;
    std::uint64_t total = 0;
    for (const Seg &s : segs) {
        sizes.push_back(s.pages);
        total += s.pages;
    }
    if (total == 0)
        return 0.0;
    std::sort(sizes.begin(), sizes.end(), std::greater<>());
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < sizes.size() && i < k; ++i)
        acc += sizes[i];
    return static_cast<double>(acc) / total;
}

Log2Histogram
freeBlockDistribution(const PhysicalMemory &pm)
{
    Log2Histogram hist;
    for (unsigned n = 0; n < pm.numNodes(); ++n)
        hist.mergeFrom(pm.zone(n).freeBlockHistogram());
    return hist;
}

CoverageMetrics
CoverageTimeline::average() const
{
    CoverageMetrics avg;
    if (samples_.empty())
        return avg;
    double c32 = 0, c128 = 0, maps = 0, for99 = 0, total = 0;
    for (const auto &s : samples_) {
        c32 += s.cov32;
        c128 += s.cov128;
        maps += s.mappings;
        for99 += s.mappingsFor99;
        total += s.totalPages;
    }
    const double n = samples_.size();
    avg.cov32 = c32 / n;
    avg.cov128 = c128 / n;
    avg.mappings = static_cast<std::uint64_t>(maps / n);
    avg.mappingsFor99 = static_cast<std::uint64_t>(for99 / n);
    avg.totalPages = static_cast<std::uint64_t>(total / n);
    return avg;
}

} // namespace contig
