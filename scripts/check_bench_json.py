#!/usr/bin/env python3
"""Validate a bench binary's --json output against the documented schema.

Usage: check_bench_json.py [--expect-lock-stats] [--expect-scaling]
                           [--expect-trace] [--expect-attrib]
                           [--expect-reclaim]
                           <bench-binary> [extra args...]
       check_bench_json.py --timeline-file <timeline.jsonl>

Runs the bench with --json into a temp file and checks the document is
valid JSON of shape {schema_version, bench, config, rows, metrics}:
  - "schema_version" is an integer (currently 3),
  - "bench" is a non-empty string,
  - "config" is an object with the scaled-machine geometry keys and a
    "run" reproducibility object (RNG seeds, kernel knobs),
  - "rows" is a non-empty list of objects each tagged with its "table"
    caption,
  - "metrics" is a non-empty object of MetricRegistry samples
    (counters/gauges as numbers, summaries as {count, sum, min, max,
    mean}, histograms as {log2_buckets: [...]}).

Schema v3 additions are validated whenever present:
  - "metrics" keys of the form lock.<site>.<leaf> must use exactly the
    leaves {acquisitions, contended, retries, spin_us} and be numeric,
  - the derived "scaling" section must follow the documented shape
    ({parallel: {...}, xlat: {...}, locks: {top_contended: [...]}},
    every sub-section optional but well-formed when emitted).
Schema v3 trace-frontend additions, also validated whenever present:
  - "config.run" keys trace.in/trace.out require trace.digest; a
    ckpt.at_chunk note requires ckpt.out + ckpt.accesses; a
    ckpt.resume_chunk note requires trace.in,
  - "metrics" keys trace.frontend.<leaf> must use known leaves and be
    numeric; any run noting trace.in must emit them,
  - the "scaling" section may carry a "trace_frontend" decode report.
--expect-lock-stats / --expect-scaling turn presence of lock.* metrics
and of a "scaling" section into hard requirements (used by the ctest
that runs a bench under --lock-stats). --expect-trace first captures a
trace (--trace-out into a temp dir), then runs the validated bench
with --trace-in on it, requiring trace.frontend.* metrics.

Schema v4 additions, validated whenever present:
  - "config.attrib" is a boolean mirroring the --attrib switch,
  - the "attribution" section must follow the documented shape:
    {exemplar_capacity, classes, xlat: {<label>: table}, fault?}, each
    xlat table {events, walk_cycles, exposed_cycles, outcomes:
    {<outcome>: {..., classes: [cost cells]}}, exemplars: [...]} keyed
    by the stable outcome tokens (tlb_hit, segment_hit, spot_hit,
    range_hit, psc_walk, full_walk), every cost cell carrying events /
    cycle sums / p50 / p90 / p99 / hist buckets, exemplars bounded by
    exemplar_capacity, and the fault sub-section keyed by
    (kind x order x fallback).
--expect-attrib turns presence of the "attribution" section into a
hard requirement (used by the attrib_schema_check ctest, which runs a
bench under --attrib).

Memory-pressure additions, validated whenever present:
  - "metrics" keys <kernel-prefix>.reclaim.<leaf> must use the
    ReclaimEngine leaf set (scans, reclaimed, swap_outs, refaults,
    kswapd_runs, direct_reclaims, ...) and be numeric; every prefix
    that emits any reclaim leaf must emit the core trio
    {reclaimed, swap_outs, refaults}.
--expect-reclaim turns presence of *.reclaim.* metrics into a hard
requirement (used by the reclaim_schema_check ctest, which runs a
bench whose kernels enable reclaim).

With --timeline-file it instead validates an observatory timeline: one
JSON snapshot record per line, per-stream strictly-increasing seq and
non-decreasing tick, kind "full"|"delta" with the first record of every
stream a "full".

Registered as a ctest so the schema cannot drift silently.
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path


def fail(msg):
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


LOCK_LEAVES = {"acquisitions", "contended", "retries", "spin_us"}

# Leaves under "<kernel-prefix>.reclaim.": the ReclaimEngine counter
# and gauge set, plus the legacy "direct" alias kept for dashboards.
RECLAIM_LEAVES = {"scans", "rotations", "deactivations", "reclaimed",
                  "swap_outs", "refaults", "swap_cache_hits",
                  "thp_splits", "pagecache_reclaimed", "kswapd_wakes",
                  "kswapd_runs", "direct_reclaims",
                  "targeted_reclaims", "direct_cycles",
                  "kswapd_cycles", "low_watermark_hits",
                  "min_watermark_hits", "pinned_skips", "busy_skips",
                  "swapped_pages", "lru_inactive_pages",
                  "lru_active_pages", "direct"}

# A reclaim-enabled kernel always emits at least these (the headline
# pressure counters); their absence means reclaim never ran.
RECLAIM_CORE = {"reclaimed", "swap_outs", "refaults"}

FRONTEND_LEAVES = {"chunks_decoded", "accesses_decoded",
                   "bytes_decoded", "decode_us", "stall_us", "wait_us",
                   "ring_depth", "start_chunk"}


def check_frontend_metrics(metrics):
    """Validate trace.frontend.<leaf> keys; return True if any seen."""
    seen = False
    for name, value in metrics.items():
        if not name.startswith("trace.frontend."):
            continue
        seen = True
        leaf = name[len("trace.frontend."):]
        if leaf not in FRONTEND_LEAVES:
            fail(f"trace metric {name!r} has unknown leaf {leaf!r} "
                 f"(expected one of {sorted(FRONTEND_LEAVES)})")
        if not isinstance(value, (int, float)):
            fail(f"trace metric {name!r} is not numeric: {value!r}")
    return seen


def check_lock_metrics(metrics):
    """Validate lock.<site>.<leaf> keys; return the site names seen."""
    sites = {}
    for name, value in metrics.items():
        if not name.startswith("lock."):
            continue
        body = name[len("lock."):]
        site, dot, leaf = body.rpartition(".")
        if not dot or not site:
            fail(f"lock metric {name!r} is not of the form "
                 f"lock.<site>.<leaf>")
        if leaf not in LOCK_LEAVES:
            fail(f"lock metric {name!r} has unknown leaf {leaf!r} "
                 f"(expected one of {sorted(LOCK_LEAVES)})")
        if not isinstance(value, (int, float)):
            fail(f"lock metric {name!r} is not numeric: {value!r}")
        sites.setdefault(site, set()).add(leaf)
    for site, leaves in sites.items():
        missing = LOCK_LEAVES - leaves
        if missing:
            fail(f"lock site {site!r} missing leaves {sorted(missing)}")
    return sites


def check_reclaim_metrics(metrics):
    """Validate <prefix>.reclaim.<leaf> keys; return prefixes seen."""
    prefixes = {}
    for name, value in metrics.items():
        if name.startswith("reclaim."):
            prefix, leaf = "", name[len("reclaim."):]
        elif ".reclaim." in name:
            prefix, _, leaf = name.partition(".reclaim.")
        else:
            continue
        if leaf not in RECLAIM_LEAVES:
            fail(f"reclaim metric {name!r} has unknown leaf {leaf!r} "
                 f"(expected one of {sorted(RECLAIM_LEAVES)})")
        if not isinstance(value, (int, float)):
            fail(f"reclaim metric {name!r} is not numeric: {value!r}")
        prefixes.setdefault(prefix, set()).add(leaf)
    engine_prefixes = {}
    for prefix, leaves in prefixes.items():
        if leaves == {"direct"}:
            # Reclaim-off kernels still bump the legacy
            # "reclaim.direct" slow-path counter (dropCaches retry);
            # only a real ReclaimEngine owes the full core set, and
            # only engine-backed prefixes satisfy --expect-reclaim.
            continue
        missing = RECLAIM_CORE - leaves
        if missing:
            fail(f"reclaim prefix {prefix!r} missing core leaves "
                 f"{sorted(missing)}")
        engine_prefixes[prefix] = leaves
    return engine_prefixes


XLAT_OUTCOMES = {"tlb_hit", "segment_hit", "spot_hit", "range_hit",
                 "psc_walk", "full_walk"}

FAULT_KINDS = {"anon", "cow", "file"}
FAULT_ORDERS = {"base", "huge"}
FAULT_FALLS = {"none", "no_huge_block", "oom"}


def check_cost_cell(where, cell, cycle_keys):
    """Validate one cost cell: counts, cycle sums, percentiles, hist."""
    if not isinstance(cell, dict):
        fail(f"'{where}' is not an object")
    for key in ("events", *cycle_keys, "p50", "p90", "p99"):
        if key not in cell:
            fail(f"'{where}' missing {key!r}")
        if not isinstance(cell[key], (int, float)):
            fail(f"'{where}.{key}' is not numeric: {cell[key]!r}")
    if "hist" not in cell:
        fail(f"'{where}' missing 'hist'")
    if not isinstance(cell["hist"], list) or not all(
            isinstance(b, (int, float)) for b in cell["hist"]):
        fail(f"'{where}.hist' must be a list of numbers")
    if not cell["p50"] <= cell["p90"] <= cell["p99"]:
        fail(f"'{where}' percentiles not monotone: "
             f"p50={cell['p50']} p90={cell['p90']} p99={cell['p99']}")


def check_attribution(attrib):
    """Validate the per-event cost 'attribution' section (schema v4)."""
    if not isinstance(attrib, dict):
        fail("'attribution' must be an object")
    for key in ("exemplar_capacity", "classes", "xlat"):
        if key not in attrib:
            fail(f"'attribution' missing {key!r}")
    cap = attrib["exemplar_capacity"]
    n_classes = attrib["classes"]
    if not isinstance(cap, int) or cap <= 0:
        fail(f"'attribution.exemplar_capacity' must be a positive "
             f"integer: {cap!r}")
    if not isinstance(n_classes, int) or n_classes <= 0:
        fail(f"'attribution.classes' must be a positive integer: "
             f"{n_classes!r}")
    xlat = attrib["xlat"]
    if not isinstance(xlat, dict):
        fail("'attribution.xlat' must be an object")
    for label, table in xlat.items():
        where = f"attribution.xlat.{label}"
        if not isinstance(table, dict):
            fail(f"'{where}' is not an object")
        for key in ("events", "walk_cycles", "exposed_cycles",
                    "outcomes", "exemplars"):
            if key not in table:
                fail(f"'{where}' missing {key!r}")
        outcomes = table["outcomes"]
        if not isinstance(outcomes, dict) or not outcomes:
            fail(f"'{where}.outcomes' must be a non-empty object")
        total_events = 0
        for name, outcome in outcomes.items():
            owhere = f"{where}.outcomes.{name}"
            if name not in XLAT_OUTCOMES:
                fail(f"'{owhere}': unknown outcome (expected one of "
                     f"{sorted(XLAT_OUTCOMES)})")
            if not isinstance(outcome, dict):
                fail(f"'{owhere}' is not an object")
            for key in ("events", "walk_cycles", "exposed_cycles",
                        "exposed_p50", "exposed_p90", "exposed_p99"):
                if key not in outcome:
                    fail(f"'{owhere}' missing {key!r}")
            classes = outcome.get("classes")
            if not isinstance(classes, list) or not classes:
                fail(f"'{owhere}.classes' must be a non-empty list "
                     f"(empty outcomes are elided entirely)")
            class_events = 0
            for i, cell in enumerate(classes):
                cwhere = f"{owhere}.classes[{i}]"
                if not isinstance(cell, dict):
                    fail(f"'{cwhere}' is not an object")
                if not isinstance(cell.get("class"), int) or \
                        not 0 <= cell["class"] < n_classes:
                    fail(f"'{cwhere}.class' out of [0,{n_classes}): "
                         f"{cell.get('class')!r}")
                if not isinstance(cell.get("name"), str):
                    fail(f"'{cwhere}.name' must be a string")
                check_cost_cell(cwhere, cell,
                                ("walk_cycles", "exposed_cycles"))
                class_events += cell["events"]
            if class_events != outcome["events"]:
                fail(f"'{owhere}': class events sum {class_events} != "
                     f"outcome events {outcome['events']}")
            total_events += outcome["events"]
        if total_events != table["events"]:
            fail(f"'{where}': outcome events sum {total_events} != "
                 f"table events {table['events']}")
        exemplars = table["exemplars"]
        if not isinstance(exemplars, list) or len(exemplars) > cap:
            fail(f"'{where}.exemplars' must be a list of at most "
                 f"{cap} entries")
        last_cycles = None
        for i, ex in enumerate(exemplars):
            ewhere = f"{where}.exemplars[{i}]"
            if not isinstance(ex, dict):
                fail(f"'{ewhere}' is not an object")
            for key in ("vpn", "cycles", "outcome", "class", "chunk",
                        "seq"):
                if key not in ex:
                    fail(f"'{ewhere}' missing {key!r}")
            if ex["outcome"] not in XLAT_OUTCOMES:
                fail(f"'{ewhere}.outcome' unknown: {ex['outcome']!r}")
            if last_cycles is not None and ex["cycles"] > last_cycles:
                fail(f"'{where}.exemplars' not sorted hottest-first "
                     f"({last_cycles} then {ex['cycles']})")
            last_cycles = ex["cycles"]
    if "fault" in attrib:
        flt = attrib["fault"]
        if not isinstance(flt, dict):
            fail("'attribution.fault' must be an object")
        for key in ("events", "cycles", "cells"):
            if key not in flt:
                fail(f"'attribution.fault' missing {key!r}")
        cells = flt["cells"]
        if not isinstance(cells, list):
            fail("'attribution.fault.cells' must be a list")
        cell_events = 0
        for i, cell in enumerate(cells):
            cwhere = f"attribution.fault.cells[{i}]"
            if not isinstance(cell, dict):
                fail(f"'{cwhere}' is not an object")
            if cell.get("kind") not in FAULT_KINDS:
                fail(f"'{cwhere}.kind' unknown: {cell.get('kind')!r}")
            if cell.get("order") not in FAULT_ORDERS:
                fail(f"'{cwhere}.order' unknown: {cell.get('order')!r}")
            if cell.get("fallback") not in FAULT_FALLS:
                fail(f"'{cwhere}.fallback' unknown: "
                     f"{cell.get('fallback')!r}")
            check_cost_cell(cwhere, cell, ("cycles",))
            cell_events += cell["events"]
        if cell_events != flt["events"]:
            fail(f"'attribution.fault': cell events sum {cell_events} "
                 f"!= section events {flt['events']}")
    return len(xlat)


def check_numeric_list(where, value):
    if not isinstance(value, list) or not value:
        fail(f"'{where}' must be a non-empty list")
    if not all(isinstance(v, (int, float)) for v in value):
        fail(f"'{where}' has non-numeric entries")


def check_scaling(scaling):
    """Validate the derived 'scaling' report section (schema v3)."""
    if not isinstance(scaling, dict) or not scaling:
        fail("'scaling' must be a non-empty object")
    unknown = set(scaling) - {"parallel", "xlat", "locks",
                              "trace_frontend"}
    if unknown:
        fail(f"'scaling' has unknown sub-sections {sorted(unknown)}")

    if "parallel" in scaling:
        par = scaling["parallel"]
        if not isinstance(par, dict):
            fail("'scaling.parallel' must be an object")
        for key in ("workers", "wall_us", "busy_us_total",
                    "worker_busy_us", "achieved_speedup",
                    "serial_fraction"):
            if key not in par:
                fail(f"'scaling.parallel' missing {key!r}")
        check_numeric_list("scaling.parallel.worker_busy_us",
                           par["worker_busy_us"])
        if len(par["worker_busy_us"]) != par["workers"]:
            fail("'scaling.parallel.worker_busy_us' length != workers")
        if not 0.0 <= par["serial_fraction"] <= 1.0:
            fail(f"'scaling.parallel.serial_fraction' out of [0,1]: "
                 f"{par['serial_fraction']}")

    if "xlat" in scaling:
        xlat = scaling["xlat"]
        if not isinstance(xlat, dict):
            fail("'scaling.xlat' must be an object")
        for key in ("shards", "shard_accesses", "shard_busy_us",
                    "shard_stall_us", "shard_wait_us", "imbalance"):
            if key not in xlat:
                fail(f"'scaling.xlat' missing {key!r}")
        for key in ("shard_accesses", "shard_busy_us",
                    "shard_stall_us", "shard_wait_us"):
            check_numeric_list(f"scaling.xlat.{key}", xlat[key])
            if len(xlat[key]) != xlat["shards"]:
                fail(f"'scaling.xlat.{key}' length != shards")

    if "trace_frontend" in scaling:
        tf = scaling["trace_frontend"]
        if not isinstance(tf, dict):
            fail("'scaling.trace_frontend' must be an object")
        for key in ("chunks_decoded", "accesses_decoded",
                    "bytes_decoded", "decode_us", "producer_stall_us",
                    "consumer_wait_us"):
            if key not in tf:
                fail(f"'scaling.trace_frontend' missing {key!r}")
            if not isinstance(tf[key], (int, float)):
                fail(f"'scaling.trace_frontend.{key}' is not numeric: "
                     f"{tf[key]!r}")

    if "locks" in scaling:
        locks = scaling["locks"]
        if not isinstance(locks, dict):
            fail("'scaling.locks' must be an object")
        for key in ("sites", "top_contended"):
            if key not in locks:
                fail(f"'scaling.locks' missing {key!r}")
        top = locks["top_contended"]
        if not isinstance(top, list) or len(top) > 5:
            fail("'scaling.locks.top_contended' must be a list of "
                 "at most 5 entries")
        for i, entry in enumerate(top):
            if not isinstance(entry, dict):
                fail(f"'scaling.locks.top_contended[{i}]' is not an "
                     f"object")
            for key in ("site", "acquisitions", "contended",
                        "retries", "spin_us"):
                if key not in entry:
                    fail(f"'scaling.locks.top_contended[{i}]' "
                         f"missing {key!r}")
        # The ranking invariant: sorted by contended, descending.
        contended = [e["contended"] for e in top]
        if contended != sorted(contended, reverse=True):
            fail("'scaling.locks.top_contended' not sorted by "
                 "contended count")


def check_metric(name, value):
    if isinstance(value, (int, float)):
        return
    if not isinstance(value, dict):
        fail(f"metric {name!r} is neither number nor object: {value!r}")
    if "log2_buckets" in value:
        if not all(isinstance(b, (int, float))
                   for b in value["log2_buckets"]):
            fail(f"histogram {name!r} has non-numeric buckets")
        return
    missing = {"count", "sum", "min", "max", "mean"} - value.keys()
    if missing:
        fail(f"summary {name!r} missing keys {sorted(missing)}")


def check_timeline(path):
    """Validate a --timeline JSONL file (one snapshot per line)."""
    path = Path(path)
    if not path.exists():
        fail(f"timeline file not found: {path}")
    streams = {}  # stream id -> (last seq, last tick)
    n_lines = 0
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if not line.strip():
            continue
        n_lines += 1
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{lineno}: not valid JSON: {e}")
        if not isinstance(rec, dict):
            fail(f"{path}:{lineno}: record is not an object")
        for key in ("stream", "domain", "seq", "tick", "kind", "set"):
            if key not in rec:
                fail(f"{path}:{lineno}: missing key {key!r}")
        if rec["kind"] not in ("full", "delta"):
            fail(f"{path}:{lineno}: bad kind {rec['kind']!r}")
        if not isinstance(rec["set"], dict):
            fail(f"{path}:{lineno}: 'set' is not an object")
        if not all(isinstance(v, (int, float))
                   for v in rec["set"].values()):
            fail(f"{path}:{lineno}: non-numeric value in 'set'")
        sid, seq, tick = rec["stream"], rec["seq"], rec["tick"]
        if sid not in streams:
            if rec["kind"] != "full":
                fail(f"{path}:{lineno}: stream {sid} starts with a "
                     f"delta record")
        else:
            last_seq, last_tick = streams[sid]
            if seq <= last_seq:
                fail(f"{path}:{lineno}: stream {sid} seq not "
                     f"strictly increasing ({last_seq} -> {seq})")
            if tick < last_tick:
                fail(f"{path}:{lineno}: stream {sid} tick went "
                     f"backwards ({last_tick} -> {tick})")
        streams[sid] = (seq, tick)
    if not n_lines:
        fail(f"{path}: timeline is empty")
    print(f"check_bench_json: OK: timeline {path}: {n_lines} snapshots, "
          f"{len(streams)} streams")


def main():
    argv = sys.argv[1:]
    expect_lock_stats = False
    expect_scaling = False
    expect_trace = False
    expect_attrib = False
    expect_reclaim = False
    while argv and argv[0] in ("--expect-lock-stats", "--expect-scaling",
                               "--expect-trace", "--expect-attrib",
                               "--expect-reclaim"):
        if argv[0] == "--expect-lock-stats":
            expect_lock_stats = True
        elif argv[0] == "--expect-scaling":
            expect_scaling = True
        elif argv[0] == "--expect-attrib":
            expect_attrib = True
        elif argv[0] == "--expect-reclaim":
            expect_reclaim = True
        else:
            expect_trace = True
        argv = argv[1:]
    if not argv:
        fail("usage: check_bench_json.py [--expect-lock-stats] "
             "[--expect-scaling] [--expect-trace] [--expect-attrib] "
             "[--expect-reclaim] <bench-binary> [args...] | "
             "--timeline-file <timeline.jsonl>")
    if argv[0] == "--timeline-file":
        if len(argv) != 2:
            fail("--timeline-file takes exactly one path")
        check_timeline(argv[1])
        return
    bench = Path(argv[0])
    if not bench.exists():
        fail(f"bench binary not found: {bench}")

    with tempfile.TemporaryDirectory() as tmp:
        out_path = Path(tmp) / "out.json"
        cmd = [str(bench), *argv[1:], "--json", str(out_path)]
        if expect_trace:
            # Capture → replay through the trace frontend inside the
            # temp dir, then validate the replay run's JSON (it carries
            # both trace.in provenance and trace.frontend.* metrics).
            cap = Path(tmp) / "cap"
            proc = subprocess.run(
                [str(bench), *argv[1:], "--json",
                 str(Path(tmp) / "cap.json"), "--trace-out", str(cap)],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                timeout=600)
            if proc.returncode != 0:
                fail(f"capture run exited {proc.returncode}:\n"
                     f"{proc.stdout.decode(errors='replace')[-2000:]}")
            if not list(Path(tmp).glob("cap.*.ctrace")):
                fail("--expect-trace: capture produced no .ctrace files")
            cmd += ["--trace-in", str(cap)]
        proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, timeout=600)
        if proc.returncode != 0:
            fail(f"{' '.join(cmd)} exited {proc.returncode}:\n"
                 f"{proc.stdout.decode(errors='replace')[-2000:]}")
        if not out_path.exists():
            fail("bench did not create the --json file")
        try:
            doc = json.loads(out_path.read_text())
        except json.JSONDecodeError as e:
            fail(f"output is not valid JSON: {e}")

    for key in ("schema_version", "bench", "config", "rows", "metrics"):
        if key not in doc:
            fail(f"missing top-level key {key!r}")

    if not isinstance(doc["schema_version"], int):
        fail("'schema_version' must be an integer")
    if doc["schema_version"] < 2:
        fail(f"'schema_version' {doc['schema_version']} predates the "
             f"documented schema (>= 2)")

    if not isinstance(doc["bench"], str) or not doc["bench"]:
        fail("'bench' must be a non-empty string")

    config = doc["config"]
    if not isinstance(config, dict):
        fail("'config' must be an object")
    for key in ("host_nodes", "host_node_bytes"):
        if key not in config:
            fail(f"'config' missing {key!r}")
    if not isinstance(config.get("run"), dict):
        fail("'config.run' (the RunInfo reproducibility record) "
             "must be an object")
    run = config["run"]
    # Every kernel instance (one "<prefix>.instances" counter each)
    # must record its threading knobs: worker-thread count and the
    # per-CPU frame-cache geometry. Not every ".instances" prefix is
    # a kernel — VirtualMachine records "vm.instances" with VM-level
    # knobs only — so identify kernels by a kernel-only config key.
    kernel_prefixes = [k[: -len(".instances")] for k in run
                       if k.endswith(".instances")
                       and f"{k[: -len('.instances')]}.thp_enabled"
                       in run]
    for kp in kernel_prefixes:
        for key in ("threads", "phys.pcp_cpus", "phys.pcp_batch",
                    "phys.pcp_high"):
            if f"{kp}.{key}" not in run:
                fail(f"'config.run' kernel {kp!r} missing {key!r}")
    # Runs that used the ParallelDriver must record the base seed,
    # geometry, and each worker's derived RNG stream seed.
    if "parallel.threads" in run:
        for key in ("parallel.seed", "parallel.bytes_per_worker",
                    "parallel.chunk_bytes"):
            if key not in run:
                fail(f"'config.run' missing {key!r}")
        # Repeated notes (one ParallelDriver per bench cell) are
        # recorded as a list; the last entry is the live value.
        threads = run["parallel.threads"]
        if isinstance(threads, list):
            threads = threads[-1]
        for i in range(int(threads)):
            if f"parallel.worker{i}.seed" not in run:
                fail(f"'config.run' missing parallel.worker{i}.seed")
    # Runs that replayed a translation stream (runTranslation notes
    # "seed.translation") must record the replay-engine knobs: shard
    # count, chunk size, the walk-memo toggle, the inner-loop engine
    # (reference/batched), and the probe width (avx2/scalar). The
    # engine and probe width never change simulated results — they are
    # recorded so a wall-clock artifact is attributable to its build.
    if "seed.translation" in run:
        for key in ("xlat.threads", "xlat.chunk_accesses", "xlat.memo",
                    "xlat.engine", "xlat.simd", "xlat.numa_shards"):
            if key not in run:
                fail(f"'config.run' missing {key!r}")
        if run["xlat.engine"] not in ("reference", "batched"):
            fail(f"'xlat.engine' must be reference|batched: "
                 f"{run['xlat.engine']!r}")
        if run["xlat.simd"] not in ("avx2", "scalar"):
            fail(f"'xlat.simd' must be avx2|scalar: "
                 f"{run['xlat.simd']!r}")
    # Trace-frontend provenance: a run that captured (trace.out) or
    # replayed (trace.in) .ctrace files must record the config digest
    # the files are keyed by, and checkpoint notes must come in
    # consistent pairs (interrupted runs note ckpt.out + the snapshot
    # position; resumed runs note where they rejoined the trace).
    if "trace.in" in run or "trace.out" in run:
        if "trace.digest" not in run:
            fail("'config.run' has trace.in/trace.out but no "
                 "trace.digest")
    if "ckpt.at_chunk" in run:
        for key in ("ckpt.out", "ckpt.accesses"):
            if key not in run:
                fail(f"'config.run' has ckpt.at_chunk but no {key!r}")
    if "ckpt.resume_chunk" in run and "trace.in" not in run:
        fail("'config.run' has ckpt.resume_chunk but no trace.in "
             "(resume is only defined while replaying a trace)")

    rows = doc["rows"]
    if not isinstance(rows, list) or not rows:
        fail("'rows' must be a non-empty list")
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            fail(f"row {i} is not an object")
        if "table" not in row:
            fail(f"row {i} has no 'table' caption tag")

    metrics = doc["metrics"]
    if not isinstance(metrics, dict) or not metrics:
        fail("'metrics' must be a non-empty object")
    for name, value in metrics.items():
        check_metric(name, value)

    lock_sites = check_lock_metrics(metrics)
    if expect_lock_stats and not lock_sites:
        fail("--expect-lock-stats: no lock.<site>.* metrics in output "
             "(was the bench run with --lock-stats?)")

    reclaim_prefixes = check_reclaim_metrics(metrics)
    if expect_reclaim and not reclaim_prefixes:
        fail("--expect-reclaim: no *.reclaim.* metrics in output "
             "(did any kernel run with reclaimEnabled?)")

    have_frontend = check_frontend_metrics(metrics)
    if "trace.in" in run and not have_frontend:
        fail("run replayed a trace (trace.in noted) but emitted no "
             "trace.frontend.* metrics")
    if expect_trace and not have_frontend:
        fail("--expect-trace: no trace.frontend.* metrics in output")

    if "scaling" in doc:
        check_scaling(doc["scaling"])
    elif expect_scaling:
        fail("--expect-scaling: no 'scaling' section in output")

    if "attrib" in config and not isinstance(config["attrib"], bool):
        fail(f"'config.attrib' must be a boolean: {config['attrib']!r}")
    n_attrib_labels = 0
    if "attribution" in doc:
        if not config.get("attrib"):
            fail("'attribution' section present but config.attrib is "
                 "not true")
        n_attrib_labels = check_attribution(doc["attribution"])
    elif expect_attrib:
        fail("--expect-attrib: no 'attribution' section in output "
             "(was the bench run with --attrib?)")

    extra = ""
    if lock_sites:
        extra = f", {len(lock_sites)} lock sites"
    if reclaim_prefixes:
        extra += f", reclaim ({len(reclaim_prefixes)} kernels)"
    if have_frontend:
        extra += ", trace frontend"
    if "scaling" in doc:
        extra += ", scaling section"
    if n_attrib_labels:
        extra += f", attribution ({n_attrib_labels} xlat labels)"
    print(f"check_bench_json: OK: {doc['bench']}: {len(rows)} rows, "
          f"{len(metrics)} metrics{extra}")


if __name__ == "__main__":
    main()
