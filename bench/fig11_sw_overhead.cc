/**
 * @file
 * Reproduces Fig. 11: software runtime overhead of each allocation
 * technique normalized to default THP, with no gains from novel
 * translation hardware counted — i.e. purely the cost of faults,
 * placement decisions, zeroing, migrations and promotions.
 * Expected shape: CA and eager add ~0; ranger costs ~3% on average
 * (migrations + shootdowns); a TLB-friendly control is unaffected by
 * CA paging.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/bench_io.hh"
#include "core/report.hh"

using namespace contig;

namespace
{

/**
 * The runtime model: application work is proportional to the touched
 * footprint (a fixed number of cycles per touched page of work),
 * plus the policy's software cycles.
 */
double
runtimeCycles(const ContigRunResult &r)
{
    constexpr double kWorkCyclesPerPage = 120000.0;
    return r.touchedPages * kWorkCyclesPerPage + r.swCycles;
}

double
normalizedRuntime(const std::string &name, PolicyKind kind)
{
    NativeSystem thp_sys(PolicyKind::Thp, 7);
    auto thp_wl = makeWorkload(name, {1.0, 7});
    double thp = runtimeCycles(thp_sys.run(*thp_wl));
    thp_sys.finish(*thp_wl);

    NativeSystem sys(kind, 7);
    auto wl = makeWorkload(name, {1.0, 7});
    auto r = sys.run(*wl);
    // Ranger/Ingens keep working after allocation: run the daemon for
    // a steady-state period so migration costs are accounted.
    for (int epoch = 0; epoch < 16; ++epoch)
        sys.kernel().policy().onTick(sys.kernel());
    r.swCycles +=
        static_cast<double>(
            sys.kernel().counters().get("migrate.cycles") +
            sys.kernel().counters().get("promote.cycles"));
    double mine = runtimeCycles(r);
    sys.finish(*wl);
    return mine / thp;
}

} // namespace

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("fig11_sw_overhead", argc, argv);

    const std::vector<PolicyKind> kinds{PolicyKind::Ca, PolicyKind::Eager,
                                        PolicyKind::Ranger};
    std::vector<std::string> names = paperWorkloads();
    names.push_back("tlbfriendly");

    Report rep("Fig. 11 — software runtime normalized to THP "
               "(1.00 = no overhead)");
    rep.header({"workload", "CA", "eager", "ranger"});
    std::map<PolicyKind, std::vector<double>> all;
    for (const auto &name : names) {
        std::vector<std::string> row{name};
        for (PolicyKind kind : kinds) {
            double v = normalizedRuntime(name, kind);
            row.push_back(Report::num(v, 3));
            all[kind].push_back(v);
        }
        rep.row(row);
    }
    std::vector<std::string> g{"geomean"};
    for (PolicyKind kind : kinds)
        g.push_back(Report::num(geomean(all[kind]), 3));
    rep.row(g);
    out.add(rep);
    rep.print();

    std::printf("\npaper: eager and CA add no runtime overhead; "
                "ranger pays ~3%% for migrations\n");
    out.write();
    return 0;
}
