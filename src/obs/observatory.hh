/**
 * @file
 * The contiguity observatory: a tick-driven StateSampler that the
 * Kernel/FaultEngine and VMs register with. Every `periodFaults`
 * faults (or on explicit sampleNow()) it captures one Snapshot
 * (obs/snapshot.hh) of allocator fragmentation, contiguity-map
 * cluster CDFs, per-VMA offset runs, coverage and translation
 * counters, optionally streaming delta-encoded JSONL records into
 * the process-wide TimelineSink (`--timeline FILE` /
 * CONTIG_TIMELINE_OUT via core/bench_io).
 *
 * Cost model: a detached sampler costs the fault path exactly one
 * branch on a null pointer; an attached sampler with a large period
 * adds one counter increment + compare per fault (both verified by
 * bench/micro_obs_overhead.cc). Capture cost is only paid at the
 * sampling cadence.
 *
 * RunInfo is the reproducibility side channel: systems note their
 * RNG seeds and kernels their full KernelConfig knob set, and every
 * bench JSON `config` block embeds the collected values.
 */

#ifndef CONTIG_OBS_OBSERVATORY_HH
#define CONTIG_OBS_OBSERVATORY_HH

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "obs/snapshot.hh"

namespace contig
{

class Kernel;
class Process;
class ReplayEngine;
class TranslationSim;
class VirtualMachine;
class JsonWriter;

namespace obs
{

/** Tunables for one StateSampler. */
struct SamplerConfig
{
    /**
     * Capture every this-many faults once attached to a kernel.
     * 0 = never from the fault path; only explicit sampleNow().
     * KernelConfig::obsSamplePeriodFaults, when set, overrides this
     * at attachKernel() time.
     */
    std::uint64_t periodFaults = 0;
    /**
     * Also capture the full Fig. 9 free-block histogram per zone
     * (walks every buddy free list — noticeably pricier than the
     * O(orders + clusters) base capture).
     */
    bool captureFreeHist = false;
    /** Retain every Snapshot in memory (drivers read them back). */
    bool keepSnapshots = true;
    /** Stream label in timeline records ("CA:svm", "xlat:spot"...). */
    std::string domain = "kernel";
};

class StateSampler
{
  public:
    /** A segment extractor: the current 1-D or 2-D mapping list. */
    using SegProbe = std::function<std::vector<Seg>()>;

    explicit StateSampler(SamplerConfig cfg = {});
    ~StateSampler();

    StateSampler(const StateSampler &) = delete;
    StateSampler &operator=(const StateSampler &) = delete;

    // --- registration ---------------------------------------------------

    /**
     * Register with a kernel: its FaultEngine ticks this sampler
     * after every fault, and captures read the kernel's zones and
     * fault counters. At most one sampler per kernel.
     */
    void attachKernel(Kernel &kernel);

    /**
     * Stop fault-driven sampling. The kernel stays readable —
     * explicit sampleNow() keeps capturing its state. Called
     * automatically on destruction.
     */
    void detachKernel();

    /**
     * Register a segment probe. `proc` (optional) attributes runs to
     * its VMAs; `track_coverage` makes this probe fill the
     * snapshot's coverage metrics (at most one probe should).
     */
    void addSegProbe(std::string dim, const Process *proc, SegProbe fn,
                     bool track_coverage);

    /**
     * VM registration: adds the guest 1-D probe (gVA -> gPA) and the
     * nested 2-D probe (gVA -> hPA via the VMI intersection), the
     * 2-D one carrying the coverage metrics.
     */
    void attachVm(const Process &guest_proc, const VirtualMachine &vm);

    /** Include TLB/walker/SpOT counters in every capture. */
    void attachTranslation(const TranslationSim &sim);

    /**
     * Replay-engine variant: captures see the shard-merged pipeline
     * and SpOT counters (coverage/accuracy recomputed from the sums).
     */
    void attachTranslation(const ReplayEngine &engine);

    // --- sampling -------------------------------------------------------

    /**
     * The fault-path hook (called by FaultEngine::finishFault).
     * Costs one increment + compare until the period elapses.
     */
    void
    onFaultTick()
    {
        if (periodFaults_ == 0)
            return;
        if (++sinceSample_ >= periodFaults_) {
            sinceSample_ = 0;
            sampleNow();
        }
    }

    /** Capture now; tick taken from the kernel clock (or seq). */
    const Snapshot &sampleNow();

    /** Capture now at an explicit tick (kernel-less samplers). */
    const Snapshot &sampleAt(std::uint64_t tick);

    // --- results --------------------------------------------------------

    const std::vector<Snapshot> &snapshots() const { return snapshots_; }
    std::uint64_t captures() const { return seqNext_; }
    std::uint64_t periodFaults() const { return periodFaults_; }
    void setPeriodFaults(std::uint64_t p) { periodFaults_ = p; }
    const SamplerConfig &config() const { return cfg_; }

  private:
    struct Probe
    {
        std::string dim;
        const Process *proc = nullptr;
        SegProbe fn;
        bool trackCoverage = false;
    };

    void capture(Snapshot &snap, std::uint64_t tick);
    void emitTimeline(const Snapshot &snap);

    SamplerConfig cfg_;
    std::uint64_t periodFaults_ = 0;
    std::uint64_t sinceSample_ = 0;
    std::uint64_t seqNext_ = 0;
    Kernel *kernel_ = nullptr;
    bool engineAttached_ = false;
    const TranslationSim *xlat_ = nullptr;
    const ReplayEngine *replay_ = nullptr;
    std::vector<Probe> probes_;
    std::vector<Snapshot> snapshots_;
    Snapshot last_;
    /** Timeline delta state. */
    bool streamOpen_ = false;
    std::uint64_t streamId_ = 0;
    bool emittedFull_ = false;
    FlatSnap prevFlat_;
};

/**
 * The process-wide JSONL timeline file. BenchOutput opens it from
 * `--timeline FILE` / CONTIG_TIMELINE_OUT; every StateSampler whose
 * lifetime overlaps streams its records into it under a fresh
 * stream id.
 */
class TimelineSink
{
  public:
    static TimelineSink &global();

    TimelineSink() = default;
    ~TimelineSink();
    TimelineSink(const TimelineSink &) = delete;
    TimelineSink &operator=(const TimelineSink &) = delete;

    /** Open (truncate) the output; enables streaming. */
    bool open(const std::string &path);
    /** Flush and close; further emits are dropped. */
    void close();

    bool enabled() const { return file_ != nullptr; }
    const std::string &path() const { return path_; }
    std::uint64_t records() const { return records_; }
    std::uint64_t streams() const { return nextStream_; }

    /** Allocate a stream id for one sampler. */
    std::uint64_t newStream() { return nextStream_++; }

    /** Append one record as a JSON line. */
    void emit(const TimelineRecord &rec);

  private:
    std::FILE *file_ = nullptr;
    std::string path_;
    std::uint64_t records_ = 0;
    std::uint64_t nextStream_ = 0;
};

/**
 * Reproducibility record: seeds and config knobs noted during a run,
 * deduplicated per key. BenchOutput::write() embeds the collected
 * values under config.run in every bench JSON document.
 */
class RunInfo
{
  public:
    static RunInfo &global();

    RunInfo() = default;
    RunInfo(const RunInfo &) = delete;
    RunInfo &operator=(const RunInfo &) = delete;

    void note(std::string_view key, std::string_view value);
    void note(std::string_view key, std::uint64_t value);
    void note(std::string_view key, double value);
    void note(std::string_view key, bool value);
    /** Increment an occurrence counter ("kernel.instances"). */
    void count(std::string_view key);

    bool empty() const { return values_.empty() && counts_.empty(); }
    void clear();

    /**
     * Emit as one JSON object: counters as numbers, single-valued
     * keys as their value string, multi-valued keys (the same knob
     * noted with different values across instances) as an array.
     */
    void writeJson(JsonWriter &w) const;

  private:
    std::map<std::string, std::set<std::string>, std::less<>> values_;
    std::map<std::string, std::uint64_t, std::less<>> counts_;
};

} // namespace obs
} // namespace contig

#endif // CONTIG_OBS_OBSERVATORY_HH
