#include "tlb/replay.hh"

#include "base/logging.hh"
#include "obs/trace.hh"

namespace contig
{

ReplayEngine::ReplayEngine(const XlatConfig &cfg, unsigned threads,
                           const PageTable &pt)
    : threads_(threads ? threads : 1),
      chunkPhase_(obs::Phase::bind(obs::MetricRegistry::global(),
                                   "xlat.chunk"))
{
    initShards(cfg, pt, nullptr);
}

ReplayEngine::ReplayEngine(const XlatConfig &cfg, unsigned threads,
                           const PageTable &guest_pt,
                           const VirtualMachine &vm)
    : threads_(threads ? threads : 1),
      chunkPhase_(obs::Phase::bind(obs::MetricRegistry::global(),
                                   "xlat.chunk"))
{
    initShards(cfg, guest_pt, &vm);
}

void
ReplayEngine::initShards(const XlatConfig &cfg, const PageTable &pt,
                         const VirtualMachine *vm)
{
    // The engine times chunks itself (on the replay thread); shard
    // phase timers would race on the global summaries when threaded,
    // and would double-count when not.
    XlatConfig shard_cfg = cfg;
    shard_cfg.phaseTimers = false;
    shards_.reserve(threads_);
    for (unsigned i = 0; i < threads_; ++i) {
        if (vm)
            shards_.push_back(std::make_unique<TranslationSim>(
                shard_cfg, pt, *vm));
        else
            shards_.push_back(
                std::make_unique<TranslationSim>(shard_cfg, pt));
    }
    metricSource_ = obs::MetricSource(
        obs::MetricRegistry::global(), "xlat.replay",
        [this](obs::MetricSink &sink) {
            sink.counter("chunks", chunks_);
            sink.counter("accesses", accessesDone_);
            sink.gauge("threads", threads_);
        });
    if (threads_ > 1)
        startWorkers();
}

void
ReplayEngine::startWorkers()
{
    lanes_.resize(threads_);
    startBarrier_ = std::make_unique<std::barrier<>>(threads_ + 1);
    endBarrier_ = std::make_unique<std::barrier<>>(threads_ + 1);
    workers_.reserve(threads_);
    for (unsigned i = 0; i < threads_; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ReplayEngine::~ReplayEngine()
{
    if (!workers_.empty()) {
        stop_ = true;
        startBarrier_->arrive_and_wait();
        for (std::thread &t : workers_)
            t.join();
    }
}

void
ReplayEngine::setSegments(const std::vector<Seg> &segs)
{
    for (auto &shard : shards_)
        shard->setSegments(segs);
}

unsigned
ReplayEngine::shardOf(Vpn vpn, unsigned threads)
{
    // splitmix64 finalizer: adjacent pages spread across shards, and
    // the partition is a pure function of (vpn, threads).
    std::uint64_t key = vpn + 0x9E3779B97F4A7C15ull;
    key = (key ^ (key >> 30)) * 0xBF58476D1CE4E5B9ull;
    key = (key ^ (key >> 27)) * 0x94D049BB133111EBull;
    key ^= key >> 31;
    return static_cast<unsigned>(key % threads);
}

void
ReplayEngine::workerLoop(unsigned id)
{
    std::vector<MemAccess> &mine = lanes_[id];
    for (;;) {
        startBarrier_->arrive_and_wait();
        if (stop_)
            return;
        mine.clear();
        for (std::size_t i = 0; i < chunkN_; ++i)
            if (shardOf(chunk_[i].va.pageNumber(), threads_) == id)
                mine.push_back(chunk_[i]);
        shards_[id]->accessChunk(mine.data(), mine.size());
        endBarrier_->arrive_and_wait();
    }
}

void
ReplayEngine::replayChunk(const MemAccess *a, std::size_t n)
{
    {
        // Single-shard runs attribute the modelled walk cycles to the
        // phase as TranslationSim did; threaded runs record wall time
        // only (shard cycle counters advance concurrently).
        obs::ScopedPhase timer(
            chunkPhase_,
            threads_ == 1 ? &shards_[0]->stats().walkCycles : nullptr);
        if (threads_ == 1) {
            shards_[0]->accessChunk(a, n);
        } else {
            chunk_ = a;
            chunkN_ = n;
            startBarrier_->arrive_and_wait();
            endBarrier_->arrive_and_wait();
        }
    }
    ++chunks_;
    accessesDone_ += n;
    CONTIG_TRACE(obs::TraceEventKind::ReplayChunk, chunks_ - 1, n,
                 mergedStats().walks);
}

XlatStats
ReplayEngine::mergedStats() const
{
    XlatStats sum;
    for (const auto &shard : shards_) {
        const XlatStats &s = shard->stats();
        sum.accesses += s.accesses;
        sum.l1Hits += s.l1Hits;
        sum.l2Hits += s.l2Hits;
        sum.walks += s.walks;
        sum.walkRefs += s.walkRefs;
        sum.walkCycles += s.walkCycles;
        sum.exposedCycles += s.exposedCycles;
        sum.spotCorrect += s.spotCorrect;
        sum.spotMispredicted += s.spotMispredicted;
        sum.spotNoPrediction += s.spotNoPrediction;
        sum.rangeHits += s.rangeHits;
        sum.segmentHits += s.segmentHits;
    }
    return sum;
}

std::optional<SpotStats>
ReplayEngine::mergedSpotStats() const
{
    if (!shards_[0]->spot())
        return std::nullopt;
    SpotStats sum;
    for (const auto &shard : shards_) {
        const SpotStats &s = shard->spot()->stats();
        sum.lookups += s.lookups;
        sum.correct += s.correct;
        sum.mispredicted += s.mispredicted;
        sum.noPrediction += s.noPrediction;
        sum.fills += s.fills;
        sum.fillsBlockedByBits += s.fillsBlockedByBits;
        sum.offsetReplacements += s.offsetReplacements;
    }
    return sum;
}

} // namespace contig
