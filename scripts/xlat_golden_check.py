#!/usr/bin/env python3
"""Golden-equivalence gate for the translation replay engine.

Usage: xlat_golden_check.py <fig13-binary> <fig14-binary> <golden-dir>

The replay engine's contract (tlb/replay.hh) is that --xlat-threads 1
is instruction-identical to the pre-engine per-access simulator, and
that chunk size is pure batching. This check pins both at the
strongest possible grain — the printed fig13/fig14 tables must be
byte-for-byte identical to the committed goldens:

  1. default flags (threads=1, default chunk)  == golden,
  2. --xlat-threads 1 --xlat-chunk 1024        == golden
     (chunking never moves a counter),
  3. --xlat-threads 2 run twice: both runs identical to each other
     (sharded replay is deterministic; its counters legitimately
     differ from the golden — private per-shard caches).

The goldens (tests/golden/*.txt) were captured from the seed
simulator before the replay engine existed; regenerate them only for
an intentional model change, never to absorb a replay-engine diff.
"""

import subprocess
import sys
from pathlib import Path


def fail(msg):
    print(f"xlat_golden_check: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run(binary, *flags):
    cmd = [str(binary), *flags]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, timeout=600)
    if proc.returncode != 0:
        fail(f"{' '.join(cmd)} exited {proc.returncode}:\n"
             f"{proc.stdout.decode(errors='replace')[-2000:]}")
    return proc.stdout


def diff_lines(a, b):
    """First differing line of two byte outputs, for the error text."""
    for i, (la, lb) in enumerate(zip(a.splitlines(), b.splitlines()), 1):
        if la != lb:
            return (f"line {i}:\n  got:    {la.decode(errors='replace')}"
                    f"\n  golden: {lb.decode(errors='replace')}")
    return f"lengths differ ({len(a)} vs {len(b)} bytes)"


def check_golden(name, binary, golden_path):
    golden = golden_path.read_bytes()
    for flags in ([], ["--xlat-threads", "1", "--xlat-chunk", "1024"]):
        got = run(binary, *flags)
        if got != golden:
            fail(f"{name} {' '.join(flags) or '(default flags)'} "
                 f"diverged from {golden_path.name}: "
                 f"{diff_lines(got, golden)}")
    print(f"xlat_golden_check: OK: {name} matches "
          f"{golden_path.name} (default and chunked)")


def main():
    if len(sys.argv) != 4:
        fail("usage: xlat_golden_check.py <fig13> <fig14> <golden-dir>")
    fig13, fig14 = Path(sys.argv[1]), Path(sys.argv[2])
    golden = Path(sys.argv[3])
    for p in (fig13, fig14):
        if not p.exists():
            fail(f"bench binary not found: {p}")

    check_golden("fig13", fig13,
                 golden / "fig13_translation_overhead.txt")
    check_golden("fig14", fig14, golden / "fig14_spot_breakdown.txt")

    first = run(fig14, "--xlat-threads", "2")
    second = run(fig14, "--xlat-threads", "2")
    if first != second:
        fail(f"fig14 --xlat-threads 2 is not deterministic: "
             f"{diff_lines(second, first)}")
    print("xlat_golden_check: OK: fig14 --xlat-threads 2 is "
          "run-to-run identical")


if __name__ == "__main__":
    main()
