file(REMOVE_RECURSE
  "CMakeFiles/table1_ranges_anchors.dir/table1_ranges_anchors.cc.o"
  "CMakeFiles/table1_ranges_anchors.dir/table1_ranges_anchors.cc.o.d"
  "table1_ranges_anchors"
  "table1_ranges_anchors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_ranges_anchors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
