/**
 * @file
 * Reproduces Table V: total page faults and 99th-percentile fault
 * latency across the suite for THP, CA paging, and eager paging.
 * Expected shape: THP and CA have the same fault count and nearly the
 * same tail latency (CA's placement is cheap); eager collapses the
 * fault count to a handful of giant pre-allocations whose bulk
 * zeroing pushes the 99th latency up by orders of magnitude.
 */

#include <chrono>
#include <cstdio>

#include "core/experiment.hh"
#include "core/bench_io.hh"
#include "core/report.hh"

using namespace contig;

namespace
{

struct Totals
{
    std::uint64_t faults = 0;
    double p99Us = 0.0;
};

/** One batched-vs-per-fault arm: 4 KiB demand population. */
struct BatchArm
{
    std::uint64_t faults = 0;
    double p99Us = 0.0;
    double wallUsPerPage = 0.0;
};

BatchArm
runPopulate(PolicyKind kind, bool batching)
{
    constexpr std::uint64_t kPages = 4096;
    constexpr std::uint64_t kSpan = 64;
    KernelConfig cfg = kernelConfigFor(kind);
    cfg.thpEnabled = false; // order-0 runs: the batched case
    cfg.faultBatching = batching;
    cfg.metricsPrefix = batching ? "t5_batched" : "t5_single";
    Kernel k(cfg, makePolicy(kind));
    Process &p = k.createProcess("bench");
    Vma &vma = p.mmap(kPages * kPageSize);

    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t off = 0; off < kPages; off += kSpan)
        p.touchRange(vma.start() + off * kPageSize, kSpan * kPageSize);
    const auto t1 = std::chrono::steady_clock::now();

    BatchArm arm;
    arm.faults = k.faultStats().faults;
    arm.p99Us = k.faultStats().latencyUs.quantile(0.99);
    arm.wallUsPerPage =
        std::chrono::duration<double, std::micro>(t1 - t0).count() /
        kPages;
    return arm;
}

Totals
runSuite(PolicyKind kind)
{
    NativeSystem sys(kind, 7);
    for (const auto &name : paperWorkloads()) {
        if (name == "bt")
            continue; // keep peak footprint equal across policies
        auto wl = makeWorkload(name, {1.0, 7});
        sys.run(*wl, 1u << 30);
        sys.finish(*wl);
    }
    Totals t;
    t.faults = sys.kernel().faultStats().faults;
    t.p99Us = sys.kernel().faultStats().latencyUs.quantile(0.99);
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("table5_fault_latency", argc, argv);

    auto thp = runSuite(PolicyKind::Thp);
    auto ca = runSuite(PolicyKind::Ca);
    auto eager = runSuite(PolicyKind::Eager);

    Report rep("Table V — total page faults and 99th-%ile latency "
               "(suite aggregate)");
    rep.header({"metric", "THP", "CA paging", "eager paging"});
    rep.row({"total faults", std::to_string(thp.faults),
             std::to_string(ca.faults), std::to_string(eager.faults)});
    rep.row({"99th latency (us)", Report::num(thp.p99Us, 1),
             Report::num(ca.p99Us, 1), Report::num(eager.p99Us, 1)});
    out.add(rep);
    rep.print();

    std::printf("\npaper: THP 515us / CA 526us / eager 80372us; "
                "eager's fault count drops to tens\n\n");

    // FaultEngine addendum: the batched range path must not move any
    // simulated number (faults, latency percentiles) — only the
    // host-side cost per fault drops.
    Report bat("Table V addendum — batched vs per-fault resolution "
               "(4 KiB populate, 64-page spans)");
    bat.header({"policy", "faults", "p99 (us)", "per-fault wall us/pg",
                "batched wall us/pg", "wall speedup"});
    for (PolicyKind kind : {PolicyKind::Thp, PolicyKind::Ca}) {
        BatchArm single = runPopulate(kind, false);
        BatchArm batched = runPopulate(kind, true);
        if (single.faults != batched.faults ||
            single.p99Us != batched.p99Us)
            std::printf("WARNING: batched arm diverged for %s\n",
                        policyName(kind).c_str());
        bat.row({policyName(kind), std::to_string(single.faults),
                 Report::num(single.p99Us, 1),
                 Report::num(single.wallUsPerPage, 3),
                 Report::num(batched.wallUsPerPage, 3),
                 Report::num(single.wallUsPerPage /
                                 batched.wallUsPerPage,
                             2)});
    }
    out.add(bat);
    bat.print();

    out.write();
    return 0;
}
