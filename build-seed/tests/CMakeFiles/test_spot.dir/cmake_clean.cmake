file(REMOVE_RECURSE
  "CMakeFiles/test_spot.dir/spot/spot_test.cc.o"
  "CMakeFiles/test_spot.dir/spot/spot_test.cc.o.d"
  "test_spot"
  "test_spot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
