file(REMOVE_RECURSE
  "CMakeFiles/contig_inspect.dir/contig_inspect.cc.o"
  "CMakeFiles/contig_inspect.dir/contig_inspect.cc.o.d"
  "contig_inspect"
  "contig_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contig_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
