# Empty dependencies file for ext_reservation.
# This may be replaced when dependencies are built.
