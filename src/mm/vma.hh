/**
 * @file
 * Virtual memory areas (the `vm_area_struct` analogue), carrying the
 * CA-paging metadata the paper adds: a FIFO of up to 64 per-sub-region
 * Offsets (paper §III-C, "Dealing with external fragmentation") and the
 * replacement guard used to serialize racing re-placements across
 * concurrent faults (§III-C, "Avoiding multithreading pitfalls").
 */

#ifndef CONTIG_MM_VMA_HH
#define CONTIG_MM_VMA_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/sync.hh"
#include "base/types.hh"

namespace contig
{

/** How many (vaddr, Offset) pairs CA paging tracks per VMA. */
constexpr std::size_t kMaxCaOffsets = 64;

/** What backs a VMA. */
enum class VmaKind : std::uint8_t
{
    Anon,     //!< anonymous memory (heap, mmap MAP_ANONYMOUS)
    File,     //!< file-backed mapping served through the page cache
    GuestRam, //!< a VM's guest-physical memory, backed in the host
};

/**
 * One Offset record: all pages of a contiguous mapping share
 * offset = vpn - pfn (the paper defines it over addresses; we keep it
 * in page units). The fault vaddr that created the record is kept so
 * faults pick the record whose origin is closest (§III-C).
 */
struct CaOffset
{
    Vpn originVpn = 0;          //!< vpn of the fault that set this offset
    std::int64_t offsetPages = 0; //!< vpn - pfn for this sub-region
};

/**
 * A contiguous virtual address range of one process.
 */
class Vma
{
  public:
    Vma(std::uint32_t id, Gva start, std::uint64_t bytes, VmaKind kind,
        std::uint32_t file_id = 0, std::uint64_t file_offset_pages = 0)
        : id_(id), start_(start), bytes_(bytes), kind_(kind),
          fileId_(file_id), fileOffsetPages_(file_offset_pages)
    {}

    std::uint32_t id() const { return id_; }
    Gva start() const { return start_; }
    Gva end() const { return start_ + bytes_; }
    std::uint64_t bytes() const { return bytes_; }
    std::uint64_t pages() const { return bytes_ >> kPageShift; }
    VmaKind kind() const { return kind_; }
    std::uint32_t fileId() const { return fileId_; }
    std::uint64_t fileOffsetPages() const { return fileOffsetPages_; }

    bool
    contains(Gva a) const
    {
        return a >= start_ && a < end();
    }

    /** True iff the order-sized region around vpn lies inside the VMA. */
    bool
    coversAligned(Vpn vpn, unsigned order) const
    {
        const std::uint64_t n = pagesInOrder(order);
        Vpn base = vpn & ~(n - 1);
        return base >= start_.pageNumber() &&
               base + n <= start_.pageNumber() + pages();
    }

    // --- CA paging metadata -------------------------------------------
    //
    // The Offset FIFO is a lock-free ring, matching the paper's §III-C
    // design: faulting threads publish new Offsets with plain atomic
    // stores after reserving a sequence number, and readers scan the
    // ring without any lock. A reader racing a writer can observe a
    // half-updated slot; that is *by design* — an Offset is only a
    // placement hint, and the subsequent allocSpecific() re-validates
    // the target under the zone lock, so a stale or torn hint costs at
    // worst one extra placement attempt.

    /** Record a new Offset (FIFO eviction beyond kMaxCaOffsets). */
    void
    pushCaOffset(Vpn origin_vpn, std::int64_t offset_pages)
    {
        const std::uint64_t seq =
            offsetHead_.fetch_add(1, std::memory_order_acq_rel);
        OffsetSlot &slot = offsetRing_[seq % kMaxCaOffsets];
        slot.originVpn.store(origin_vpn, std::memory_order_relaxed);
        slot.offsetPages.store(offset_pages, std::memory_order_relaxed);
        // Retire overwritten sequence numbers so count/pop stay in
        // step with the ring capacity.
        std::uint64_t retries = 0;
        std::uint64_t tail = offsetTail_.load(std::memory_order_relaxed);
        while (seq + 1 - tail > kMaxCaOffsets &&
               !offsetTail_.compare_exchange_weak(
                   tail, seq + 1 - kMaxCaOffsets,
                   std::memory_order_acq_rel, std::memory_order_relaxed)) {
            ++retries;
        }
        noteOffsetRingRetries(retries);
    }

    /**
     * The Offset whose origin vpn is closest to the faulting vpn
     * (§III-C: "picks the Offset associated with the virtual address
     * closest to the currently faulting"). Ties keep the oldest
     * record.
     */
    std::optional<CaOffset>
    nearestCaOffset(Vpn vpn) const
    {
        std::uint64_t head = offsetHead_.load(std::memory_order_acquire);
        std::uint64_t tail = offsetTail_.load(std::memory_order_acquire);
        if (head - tail > kMaxCaOffsets)
            tail = head - kMaxCaOffsets;
        std::optional<CaOffset> best;
        std::uint64_t best_dist = ~std::uint64_t{0};
        for (std::uint64_t seq = tail; seq != head; ++seq) {
            const OffsetSlot &slot = offsetRing_[seq % kMaxCaOffsets];
            const Vpn origin =
                slot.originVpn.load(std::memory_order_relaxed);
            const std::int64_t off =
                slot.offsetPages.load(std::memory_order_relaxed);
            std::uint64_t dist =
                origin > vpn ? origin - vpn : vpn - origin;
            if (!best || dist < best_dist) {
                best = CaOffset{origin, off};
                best_dist = dist;
            }
        }
        return best;
    }

    bool hasCaOffsets() const { return caOffsetCount() > 0; }

    std::size_t
    caOffsetCount() const
    {
        std::uint64_t head = offsetHead_.load(std::memory_order_acquire);
        std::uint64_t tail = offsetTail_.load(std::memory_order_acquire);
        return std::min<std::uint64_t>(head - tail, kMaxCaOffsets);
    }

    /** Drop the oldest Offset (ablation hook for shallower FIFOs). */
    void
    popOldestCaOffset()
    {
        std::uint64_t retries = 0;
        std::uint64_t tail = offsetTail_.load(std::memory_order_acquire);
        while (offsetHead_.load(std::memory_order_acquire) != tail &&
               !offsetTail_.compare_exchange_weak(
                   tail, tail + 1, std::memory_order_acq_rel,
                   std::memory_order_acquire)) {
            ++retries;
        }
        noteOffsetRingRetries(retries);
    }

    /**
     * Fold lost Offset-ring CAS rounds into the shared
     * "vma.offset_ring" lock site. Uncontended pushes/pops never get
     * here with retries != 0, so the common path pays nothing.
     */
    static void
    noteOffsetRingRetries(std::uint64_t retries)
    {
#if CONTIG_LOCK_STATS
        if (retries)
            if (LockSite *site = LockStatsRegistry::offsetRingSite())
                site->noteRetries(retries);
#else
        (void)retries;
#endif
    }

    /**
     * Replacement guard (§III-C, "Avoiding multithreading pitfalls"):
     * a CAS gate so that of all the threads whose fast-path Offset
     * failed, only the first triggers the expensive re-placement; the
     * losers retry their fast path against the winner's fresh Offset.
     * Returns true if the caller acquired the right to re-place.
     */
    bool
    tryBeginReplacement()
    {
        bool expected = false;
        return replacementActive_.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel,
            std::memory_order_acquire);
    }

    void
    endReplacement()
    {
        replacementActive_.store(false, std::memory_order_release);
    }

    bool
    replacementActive() const
    {
        return replacementActive_.load(std::memory_order_acquire);
    }

    /**
     * Per-VMA fault mutex (the `mmap_sem`-sharding analogue): faults
     * within one VMA serialize here; faults on different VMAs of the
     * same process proceed in parallel under the kernel's shared lock.
     */
    SpinLock &faultLock() { return faultLock_; }

    // --- accounting -----------------------------------------------------

    /** Pages actually touched by the application. */
    std::uint64_t touchedPages = 0;
    /** Pages of physical memory allocated to back this VMA. */
    std::uint64_t allocatedPages = 0;
    /** Lazily sized per-page touched bits (bloat accounting). */
    std::vector<bool> touchedBitmap;

  private:
    std::uint32_t id_;
    Gva start_;
    std::uint64_t bytes_;
    VmaKind kind_;
    std::uint32_t fileId_;
    std::uint64_t fileOffsetPages_;

    /** One ring slot; the pair is read/written with independent
     *  relaxed atomics (torn reads are benign, see above). */
    struct OffsetSlot
    {
        std::atomic<Vpn> originVpn{0};
        std::atomic<std::int64_t> offsetPages{0};
    };

    std::array<OffsetSlot, kMaxCaOffsets> offsetRing_;
    /** Next sequence number to publish / oldest live sequence. */
    std::atomic<std::uint64_t> offsetHead_{0};
    std::atomic<std::uint64_t> offsetTail_{0};
    std::atomic<bool> replacementActive_{false};
    SpinLock faultLock_;
};

} // namespace contig

#endif // CONTIG_MM_VMA_HH
