#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "base/json.hh"

using namespace contig;

TEST(JsonWriter, EmptyObject)
{
    JsonWriter w;
    w.beginObject();
    w.endObject();
    EXPECT_TRUE(w.complete());
    EXPECT_EQ(w.str(), "{}");
}

TEST(JsonWriter, EmptyArray)
{
    JsonWriter w;
    w.beginArray();
    w.endArray();
    EXPECT_EQ(w.str(), "[]");
}

TEST(JsonWriter, ObjectCommas)
{
    JsonWriter w;
    w.beginObject();
    w.field("a", 1);
    w.field("b", 2);
    w.endObject();
    EXPECT_EQ(w.str(), "{\"a\":1,\"b\":2}");
}

TEST(JsonWriter, ArrayCommas)
{
    JsonWriter w;
    w.beginArray();
    w.value(1);
    w.value(2);
    w.value(3);
    w.endArray();
    EXPECT_EQ(w.str(), "[1,2,3]");
}

TEST(JsonWriter, Nesting)
{
    JsonWriter w;
    w.beginObject();
    w.key("rows");
    w.beginArray();
    w.beginObject();
    w.field("x", true);
    w.endObject();
    w.beginObject();
    w.endObject();
    w.endArray();
    w.endObject();
    EXPECT_EQ(w.str(), "{\"rows\":[{\"x\":true},{}]}");
}

TEST(JsonWriter, Scalars)
{
    JsonWriter w;
    w.beginArray();
    w.value(true);
    w.value(false);
    w.null();
    w.value(std::uint64_t{18446744073709551615ull});
    w.value(std::int64_t{-5});
    w.endArray();
    EXPECT_EQ(w.str(), "[true,false,null,18446744073709551615,-5]");
}

TEST(JsonWriter, Doubles)
{
    JsonWriter w;
    w.beginArray();
    w.value(1.5);
    w.value(0.0);
    w.value(-2.25);
    w.endArray();
    EXPECT_EQ(w.str(), "[1.5,0,-2.25]");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    JsonWriter w;
    w.beginArray();
    w.value(std::numeric_limits<double>::quiet_NaN());
    w.value(std::numeric_limits<double>::infinity());
    w.value(-std::numeric_limits<double>::infinity());
    w.endArray();
    EXPECT_EQ(w.str(), "[null,null,null]");
}

TEST(JsonWriter, TopLevelScalar)
{
    JsonWriter w;
    w.value("hi");
    EXPECT_TRUE(w.complete());
    EXPECT_EQ(w.str(), "\"hi\"");
}

TEST(JsonWriter, CompleteTracksNesting)
{
    JsonWriter w;
    EXPECT_FALSE(w.complete());
    w.beginObject();
    EXPECT_FALSE(w.complete());
    w.key("k");
    w.beginArray();
    EXPECT_FALSE(w.complete());
    w.endArray();
    w.endObject();
    EXPECT_TRUE(w.complete());
}

TEST(JsonWriter, MoveOutString)
{
    JsonWriter w;
    w.beginObject();
    w.endObject();
    std::string s = std::move(w).str();
    EXPECT_EQ(s, "{}");
}

TEST(JsonEscape, PassThrough)
{
    EXPECT_EQ(JsonWriter::escape("plain ascii 123"), "plain ascii 123");
    // UTF-8 multibyte sequences pass through untouched.
    EXPECT_EQ(JsonWriter::escape("\xC3\xA9"), "\xC3\xA9");
}

TEST(JsonEscape, Specials)
{
    EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
    EXPECT_EQ(JsonWriter::escape("\n\t\r\b\f"), "\\n\\t\\r\\b\\f");
}

TEST(JsonEscape, ControlCharacters)
{
    EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
    EXPECT_EQ(JsonWriter::escape(std::string_view("\x1f", 1)), "\\u001f");
    EXPECT_EQ(JsonWriter::escape(std::string_view("\0", 1)), "\\u0000");
}

TEST(JsonWriter, EscapedKeyAndValue)
{
    JsonWriter w;
    w.beginObject();
    w.field("quote\"key", "line\nbreak");
    w.endObject();
    EXPECT_EQ(w.str(), "{\"quote\\\"key\":\"line\\nbreak\"}");
}

// --- JsonValue (the reader) -----------------------------------------------

TEST(JsonValue, ParsesScalars)
{
    EXPECT_TRUE(JsonValue::parse("null")->isNull());
    EXPECT_TRUE(JsonValue::parse("true")->asBool());
    EXPECT_FALSE(JsonValue::parse("false")->asBool());
    EXPECT_DOUBLE_EQ(JsonValue::parse("-12.5e2")->asNumber(), -1250.0);
    EXPECT_EQ(JsonValue::parse("\"hi\"")->asString(), "hi");
    EXPECT_DOUBLE_EQ(JsonValue::parse(" 42 ")->asNumber(), 42.0);
}

TEST(JsonValue, ParsesContainersPreservingOrder)
{
    auto doc = JsonValue::parse(R"({"b":1,"a":[2,"x",{}],"c":null})");
    ASSERT_TRUE(doc);
    ASSERT_TRUE(doc->isObject());
    ASSERT_EQ(doc->members().size(), 3u);
    EXPECT_EQ(doc->members()[0].first, "b");
    EXPECT_EQ(doc->members()[1].first, "a");
    EXPECT_EQ(doc->members()[2].first, "c");

    const JsonValue *a = doc->find("a");
    ASSERT_TRUE(a && a->isArray());
    ASSERT_EQ(a->array().size(), 3u);
    EXPECT_DOUBLE_EQ(a->array()[0].asNumber(), 2.0);
    EXPECT_EQ(a->array()[1].asString(), "x");
    EXPECT_TRUE(a->array()[2].isObject());

    EXPECT_EQ(doc->find("missing"), nullptr);
    EXPECT_DOUBLE_EQ(doc->numberOr("b", -1), 1.0);
    EXPECT_DOUBLE_EQ(doc->numberOr("c", -1), -1.0); // null, not number
    EXPECT_DOUBLE_EQ(doc->numberOr("missing", 7), 7.0);
}

TEST(JsonValue, DecodesEscapes)
{
    auto doc = JsonValue::parse(R"("a\"b\\c\n\tAé")");
    ASSERT_TRUE(doc);
    EXPECT_EQ(doc->asString(), "a\"b\\c\n\tA\xC3\xA9");
}

TEST(JsonValue, RoundTripsWriterOutput)
{
    JsonWriter w;
    w.beginObject();
    w.field("name", "fig\"09");
    w.field("pi", 3.25);
    w.key("rows");
    w.beginArray();
    w.value(std::uint64_t{1} << 52);
    w.value(false);
    w.endArray();
    w.endObject();

    auto doc = JsonValue::parse(w.str());
    ASSERT_TRUE(doc);
    EXPECT_EQ(doc->find("name")->asString(), "fig\"09");
    EXPECT_DOUBLE_EQ(doc->find("pi")->asNumber(), 3.25);
    EXPECT_DOUBLE_EQ(doc->find("rows")->array()[0].asNumber(),
                     static_cast<double>(std::uint64_t{1} << 52));
    EXPECT_FALSE(doc->find("rows")->array()[1].asBool());
}

TEST(JsonValue, RejectsMalformedWithOffset)
{
    std::string err;
    EXPECT_FALSE(JsonValue::parse("", &err));
    EXPECT_FALSE(JsonValue::parse("{", &err));
    EXPECT_FALSE(JsonValue::parse("{\"a\":}", &err));
    EXPECT_FALSE(JsonValue::parse("[1,]", &err));
    EXPECT_FALSE(JsonValue::parse("tru", &err));
    EXPECT_FALSE(JsonValue::parse("1 2", &err)); // trailing garbage
    EXPECT_FALSE(err.empty());
}

TEST(JsonValue, RejectsRunawayNesting)
{
    std::string deep(1000, '[');
    deep += std::string(1000, ']');
    std::string err;
    EXPECT_FALSE(JsonValue::parse(deep, &err));
    EXPECT_NE(err.find("deep"), std::string::npos);
}
