file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/core/integration_test.cc.o"
  "CMakeFiles/test_integration.dir/core/integration_test.cc.o.d"
  "CMakeFiles/test_integration.dir/core/report_test.cc.o"
  "CMakeFiles/test_integration.dir/core/report_test.cc.o.d"
  "test_integration"
  "test_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
