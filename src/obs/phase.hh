/**
 * @file
 * Scoped phase timers: measure where simulator time goes, in both
 * wall-clock microseconds (how long the simulator itself spends in a
 * code region) and simulated cycles (how much modelled machine time
 * the region accounts for). Results accumulate into MetricRegistry
 * summaries named "phase.<name>.wall_us" / "phase.<name>.cycles",
 * and each timed region emits a Chrome-trace 'X' span when the phase
 * trace category is enabled.
 *
 * The fault path, the policy daemons and the walk path are
 * instrumented with these; bind a Phase once (registry lookup) and
 * construct a ScopedPhase per region entry.
 */

#ifndef CONTIG_OBS_PHASE_HH
#define CONTIG_OBS_PHASE_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "base/stats.hh"
#include "base/types.hh"
#include "obs/trace.hh"

namespace contig
{
namespace obs
{

class MetricRegistry;

/** Accumulated timing of one named phase. */
class Phase
{
  public:
    /** Bind (creating on first use) phase `name` in `reg`. */
    static Phase bind(MetricRegistry &reg, std::string_view name);

    const char *name() const { return name_; }
    Summary &wallUs() { return *wallUs_; }
    Summary &cycles() { return *cycles_; }

  private:
    Phase(const char *name, Summary *wall_us, Summary *cycles)
        : name_(name), wallUs_(wall_us), cycles_(cycles)
    {}

    /** Interned in the global TraceSink (stable lifetime). */
    const char *name_;
    /** Registry-owned summaries (stable addresses). */
    Summary *wallUs_;
    Summary *cycles_;
};

/**
 * RAII region timer. Pass a pointer to the simulated-cycle
 * accumulator the region advances (e.g. &faultStats.totalCycles) to
 * also record the modelled cycles the region added.
 */
class ScopedPhase
{
  public:
    explicit ScopedPhase(Phase &phase, const Cycles *sim_cycles = nullptr)
        : phase_(phase), simCycles_(sim_cycles),
          simStart_(sim_cycles ? *sim_cycles : 0),
          t0_(TraceSink::global().nowNs())
    {}

    ~ScopedPhase()
    {
        const std::uint64_t t1 = TraceSink::global().nowNs();
        const std::uint64_t dur_ns = t1 - t0_;
        const Cycles sim = simCycles_ ? *simCycles_ - simStart_ : 0;
        phase_.wallUs().add(static_cast<double>(dur_ns) / 1000.0);
        if (simCycles_)
            phase_.cycles().add(static_cast<double>(sim));
#if CONTIG_TRACING
        TraceSink &sink = TraceSink::global();
        if (sink.wants(kCatPhase))
            sink.recordSpan(phase_.name(), t0_, dur_ns, sim);
#endif
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    Phase &phase_;
    const Cycles *simCycles_;
    Cycles simStart_;
    std::uint64_t t0_;
};

} // namespace obs
} // namespace contig

#endif // CONTIG_OBS_PHASE_HH
