/**
 * @file
 * Micro-benchmark (google-benchmark): throughput of the translation
 * pipeline — TLB hierarchy lookups, nested walks, and the SpOT
 * prediction engine — the per-access cost that bounds how many
 * simulated accesses the figure benches can afford.
 */

#include <benchmark/benchmark.h>

#include "core/experiment.hh"

using namespace contig;

namespace
{

void
BM_TlbHierarchyAccess(benchmark::State &state)
{
    TlbHierarchy tlb(ScaledDefaults::tlb());
    Rng rng(7);
    const std::uint64_t pages = 1u << static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        Vpn vpn = rng.below(pages) * 512;
        if (tlb.access(vpn, kHugeOrder) == TlbLevel::Miss)
            tlb.fill(vpn, kHugeOrder);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_SpotPredictUpdate(benchmark::State &state)
{
    SpotEngine spot(ScaledDefaults::spot());
    Rng rng(7);
    for (auto _ : state) {
        Addr pc = 0x400000 + (rng.below(8) << 6);
        spot.predict(pc);
        spot.update(pc, 12345, true);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_TranslationPipeline(benchmark::State &state, XlatScheme scheme)
{
    // The full virtualized per-access pipeline on a real workload.
    static VirtSystem sys(PolicyKind::Ca, PolicyKind::Ca, 7);
    static auto wl = [] {
        auto w = makeWorkload("pagerank", {0.25, 7});
        Process &p = sys.guest().createProcess("bench");
        w->setup(p);
        return w;
    }();

    XlatConfig cfg;
    cfg.tlb = ScaledDefaults::tlb();
    cfg.walker = ScaledDefaults::walker();
    cfg.scheme = scheme;
    cfg.spot = ScaledDefaults::spot();
    cfg.rangeTlb = ScaledDefaults::rangeTlb();
    TranslationSim sim(cfg, wl->process()->pageTable(), sys.vm());
    if (scheme == XlatScheme::Rmm)
        sim.setSegments(extract2d(*wl->process(), sys.vm()));

    Rng rng(9);
    for (auto _ : state)
        sim.access(wl->nextAccess(rng));
    state.SetItemsProcessed(state.iterations());
}

} // namespace

BENCHMARK(BM_TlbHierarchyAccess)->Arg(3)->Arg(8);
BENCHMARK(BM_SpotPredictUpdate);
BENCHMARK_CAPTURE(BM_TranslationPipeline, base, XlatScheme::Base);
BENCHMARK_CAPTURE(BM_TranslationPipeline, spot, XlatScheme::Spot);
BENCHMARK_CAPTURE(BM_TranslationPipeline, rmm, XlatScheme::Rmm);
