#include "perfmodel/model.hh"

namespace contig
{

OverheadResult
overheadOf(const XlatStats &xs, const PerfModelConfig &cfg)
{
    OverheadResult r;
    const double instructions =
        static_cast<double>(xs.accesses) * cfg.instructionsPerAccess;
    r.idealCycles = instructions * cfg.baseCpi;
    r.translationCycles = static_cast<double>(xs.exposedCycles);
    if (r.idealCycles > 0.0)
        r.overhead = r.translationCycles / r.idealCycles;
    return r;
}

UslEstimate
estimateUsl(const XlatStats &xs, const PerfModelConfig &cfg)
{
    UslEstimate e;
    const double instructions =
        static_cast<double>(xs.accesses) * cfg.instructionsPerAccess;
    if (instructions <= 0.0)
        return e;

    e.branchesPerInstr = cfg.branchFraction;
    e.dtlbMissesPerInstr = static_cast<double>(xs.walks) / instructions;

    // Loads per cycle under ideal execution.
    const double loads_per_cycle = cfg.loadFraction / cfg.baseCpi;

    // Eq. (1): every branch opens a transient window of
    // branch-resolution cycles during which loads are unsafe.
    e.spectreUslPerInstr = cfg.branchFraction *
                           cfg.branchResolutionCycles * loads_per_cycle;

    // Eq. (2): every DTLB miss opens a window as long as the page
    // walk during which SpOT-speculated loads are unsafe.
    e.spotUslPerInstr =
        e.dtlbMissesPerInstr * xs.avgWalkCycles() * loads_per_cycle;
    return e;
}

} // namespace contig
