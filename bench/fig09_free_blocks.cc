/**
 * @file
 * Reproduces Fig. 9: the distribution of free-block sizes after the
 * benchmark suite runs to completion, under default paging vs CA
 * paging. CA's contiguous allocation (and contiguous, long-lived
 * page-cache placement) leaves free memory in far larger unaligned
 * blocks — it delays fragmentation as the machine ages.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/bench_io.hh"
#include "core/report.hh"
#include "obs/observatory.hh"

using namespace contig;

namespace
{

/** Fraction of free pages living in blocks of each size class. */
std::vector<double>
freeDistribution(PolicyKind kind, const std::vector<unsigned> &buckets)
{
    NativeSystem sys(kind, 7);
    // Run the whole suite back to back on one machine.
    for (const auto &name : paperWorkloads()) {
        if (name == "bt")
            continue; // keep peak usage within one machine for both
        auto wl = makeWorkload(name, {1.0, 7});
        sys.run(*wl, 1u << 30); // no sampling needed
        sys.finish(*wl);
    }

    // Derive the rows from one observatory capture — the same
    // per-zone free-block histograms `--timeline` streams.
    obs::SamplerConfig scfg;
    scfg.captureFreeHist = true;
    scfg.domain = "fig09:" + policyName(kind);
    obs::StateSampler sampler(scfg);
    sampler.attachKernel(sys.kernel());
    const obs::Snapshot &snap = sampler.sampleNow();

    Log2Histogram hist;
    for (const obs::ZoneSnap &z : snap.zones)
        hist.mergeFrom(z.freeHist);
    std::vector<double> out;
    const double total = std::max<double>(hist.totalWeight(), 1);
    // Cumulative weight at or above each bucket boundary.
    for (unsigned b : buckets) {
        std::uint64_t acc = 0;
        for (unsigned i = b; i < 64; ++i)
            acc += hist.bucket(i);
        out.push_back(acc / total);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("fig09_free_blocks", argc, argv);

    // Size classes in pages (log2): >=4MiB, >=16MiB, >=64MiB, >=256MiB.
    const std::vector<unsigned> buckets{10, 12, 14, 16};
    const std::vector<std::string> labels{">=4MiB", ">=16MiB", ">=64MiB",
                                          ">=256MiB"};

    auto thp = freeDistribution(PolicyKind::Thp, buckets);
    auto ca = freeDistribution(PolicyKind::Ca, buckets);

    Report rep("Fig. 9 — free memory in blocks of at least each size, "
               "after the suite completes");
    rep.header({"block size", "default(THP)", "CA"});
    for (std::size_t i = 0; i < buckets.size(); ++i)
        rep.row({labels[i], Report::pct(thp[i]), Report::pct(ca[i])});
    out.add(rep);
    rep.print();

    std::printf("\npaper: with CA a significantly larger share of free "
                "memory remains in very large (>1 GiB at full scale) "
                "blocks\n");
    out.write();
    return 0;
}
