/**
 * @file
 * Micro-benchmark (google-benchmark): the cost of the allocation fast
 * path itself — the software-overhead claim behind Fig. 11. Measures
 * the simulator's demand-fault path under default THP vs CA paging
 * (placement decisions, contiguity-map upkeep, PTE-bit marking) and
 * the raw buddy/contiguity-map primitives CA paging leans on.
 */

#include <benchmark/benchmark.h>

#include "core/experiment.hh"

using namespace contig;

namespace
{

void
BM_FaultPath(benchmark::State &state, PolicyKind kind)
{
    NativeSystem sys(kind, 7);
    Process &proc = sys.kernel().createProcess("bench");
    const std::uint64_t bytes = 64ull << 20;
    std::vector<Vma *> vmas;
    std::size_t i = 0;

    for (auto _ : state) {
        state.PauseTiming();
        Vma &vma = proc.mmap(bytes);
        state.ResumeTiming();
        // 32 huge faults through the full fault path.
        proc.touchRange(vma.start(), bytes);
        state.PauseTiming();
        vmas.push_back(&vma);
        if (++i % 8 == 0) { // keep the machine from filling up
            for (Vma *v : vmas)
                proc.munmap(*v);
            vmas.clear();
        }
        state.ResumeTiming();
    }
    state.SetItemsProcessed(state.iterations() * (bytes >> kHugeShift));
}

void
BM_BuddyAllocFree(benchmark::State &state)
{
    FrameArray frames(16 * pagesInOrder(kMaxOrder));
    BuddyAllocator buddy(frames, 0, frames.size());
    const unsigned order = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        auto pfn = buddy.alloc(order);
        benchmark::DoNotOptimize(pfn);
        buddy.free(*pfn, order);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_BuddyAllocSpecific(benchmark::State &state)
{
    FrameArray frames(16 * pagesInOrder(kMaxOrder));
    BuddyAllocator buddy(frames, 0, frames.size());
    Pfn target = 5 * pagesInOrder(kMaxOrder) + 512;
    for (auto _ : state) {
        bool ok = buddy.allocSpecific(target, kHugeOrder);
        benchmark::DoNotOptimize(ok);
        buddy.free(target, kHugeOrder);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_ContiguityMapPlacement(benchmark::State &state)
{
    // A map with many clusters: the next-fit scan cost CA paging adds
    // to first faults.
    const std::uint64_t block = pagesInOrder(kMaxOrder);
    ContiguityMap map(block);
    const int clusters = static_cast<int>(state.range(0));
    for (int i = 0; i < clusters; ++i)
        map.onBlockFree(2 * i * block); // every other block: no merge
    for (auto _ : state) {
        auto c = map.placeNextFit(block / 2);
        benchmark::DoNotOptimize(c);
    }
    state.SetItemsProcessed(state.iterations());
}

} // namespace

BENCHMARK_CAPTURE(BM_FaultPath, thp, PolicyKind::Thp)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FaultPath, ca, PolicyKind::Ca)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BuddyAllocFree)->Arg(0)->Arg(kHugeOrder);
BENCHMARK(BM_BuddyAllocSpecific);
BENCHMARK(BM_ContiguityMapPlacement)->Arg(8)->Arg(64)->Arg(512);
