/**
 * @file
 * The AllocationPolicy interface: the seam where CA paging and the
 * baseline techniques (default THP, eager paging, Ingens, Ranger,
 * ideal) plug into the kernel's demand-paging path. The FaultEngine
 * decides *when* and at *what granularity* to allocate; the policy
 * decides *where* the frames come from.
 */

#ifndef CONTIG_MM_POLICY_HH
#define CONTIG_MM_POLICY_HH

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "base/types.hh"
#include "mm/vma.hh"

namespace contig
{

class Kernel;
class Process;
class File;
namespace obs { class MetricSink; }

/**
 * Typed reason an allocation came back empty. `NoHugeBlock` is the
 * retryable failure (no block at the requested huge order; the
 * FaultEngine demotes the fault to 4 KiB); `Oom` means even a base
 * page could not be found.
 */
enum class AllocFail : std::uint8_t
{
    None,        //!< allocation succeeded
    NoHugeBlock, //!< no free block at the requested huge order
    Oom,         //!< no free page at all
};

const char *allocFailName(AllocFail f);

/** Outcome of a policy allocation. */
struct AllocResult
{
    Pfn pfn = kInvalidPfn;
    /** Cycles the placement logic itself cost (search, map updates). */
    Cycles placementCycles = 0;
    /** Why pfn is invalid; None when the allocation succeeded. */
    AllocFail fail = AllocFail::None;

    bool ok() const { return pfn != kInvalidPfn; }

    /** A failed result tagged with the reason for the given order. */
    static AllocResult
    failure(unsigned order)
    {
        AllocResult res;
        res.fail = order > 0 ? AllocFail::NoHugeBlock : AllocFail::Oom;
        return res;
    }
};

/**
 * Terminal per-policy allocation-failure tallies, maintained by the
 * FaultEngine: one count per fault that was demoted from huge to
 * 4 KiB (noHugeBlock) and one per request that found no memory at
 * all (oom — fatal for anon/COW faults, dropped for page-cache
 * fills). Exported under "policy.fallback.*".
 */
struct AllocFailCounts
{
    /** Atomic: noteAllocFail runs concurrently on fault workers. */
    std::atomic<std::uint64_t> noHugeBlock{0};
    std::atomic<std::uint64_t> oom{0};
};

/**
 * One fault of a batched range resolution: the engine fills base/order
 * (granularity stage), the policy fills res (placement stage).
 */
struct FaultSlot
{
    Vpn base = 0;
    unsigned order = 0;
    AllocResult res;
};

/**
 * Physical-placement policy for demand paging. Implementations must
 * return blocks obtained from kernel.physMem() so the buddy/contiguity
 * bookkeeping stays consistent.
 */
class AllocationPolicy
{
  public:
    virtual ~AllocationPolicy() = default;

    virtual std::string name() const = 0;

    /** Called when a VMA is created (eager/ideal placement hooks). */
    virtual void onMmap(Kernel &kernel, Process &proc, Vma &vma)
    { (void)kernel; (void)proc; (void)vma; }

    /** Called before a VMA's pages are torn down. */
    virtual void onMunmap(Kernel &kernel, Process &proc, Vma &vma)
    { (void)kernel; (void)proc; (void)vma; }

    /**
     * Allocate 2^order frames to back the fault at vpn inside vma.
     * Returning !ok() at huge order makes the FaultEngine retry at
     * order 0; !ok() at order 0 is an OOM.
     */
    virtual AllocResult allocate(Kernel &kernel, Process &proc, Vma &vma,
                                 Vpn vpn, unsigned order) = 0;

    /**
     * Batched placement: fill slots[0..n) in ascending order, stopping
     * at the first failure. Returns the number of slots filled; when
     * the return value k < n, slots[k].res carries the failing result
     * and the FaultEngine runs its per-fault failure machinery
     * (reclaim, huge demotion) for that slot before resuming.
     *
     * The default loops allocate(). See DESIGN.md "Fault pipeline —
     * the batching contract" for what implementations may assume about
     * engine state between the batch call and the installs.
     */
    virtual std::size_t allocateBatch(Kernel &kernel, Process &proc,
                                      Vma &vma, FaultSlot *slots,
                                      std::size_t n);

    /**
     * Allocate one page-cache frame for page `file_page` of a file
     * (readahead batches call this repeatedly with ascending pages).
     * Consulted only when steersFilePlacement() is true; otherwise the
     * FaultEngine bulk-fills from the buddy allocator exactly as the
     * default implementation here would.
     */
    virtual AllocResult allocateFilePage(Kernel &kernel, File &file,
                                         std::uint64_t file_page);

    /**
     * Batched page-cache placement for the contiguous uncached run
     * [first_page, first_page + n): fill out[0..n) ascending, stopping
     * at the first failure. Returns the number of pages placed. The
     * default loops allocateFilePage().
     */
    virtual std::size_t allocateFileRange(Kernel &kernel, File &file,
                                          std::uint64_t first_page,
                                          std::size_t n, AllocResult *out);

    /**
     * Called after the PTE for a fresh allocation is installed; CA
     * paging uses this to maintain the PTE contiguity bits that gate
     * SpOT's prediction-table fills.
     */
    virtual void onMapped(Kernel &kernel, Process &proc, Vma &vma,
                          Vpn vpn, Pfn pfn, unsigned order)
    { (void)kernel; (void)proc; (void)vma; (void)vpn; (void)pfn;
      (void)order; }

    /**
     * Periodic hook driven by the kernel clock (every
     * Kernel::tickPeriod faults); daemons (Ranger scans, Ingens
     * promotion) live here.
     */
    virtual void onTick(Kernel &kernel) { (void)kernel; }

    /** Whether the FaultEngine may attempt transparent huge faults. */
    virtual bool allowsHugeFaults() const { return true; }

    /**
     * Whether allocateFilePage() steers page-cache placement (CA
     * paging's per-file Offset). Policies that do not are modelled as
     * leaving long-lived cache pages wherever allocation entropy puts
     * them (see systemChurn).
     */
    virtual bool steersFilePlacement() const { return false; }

    /**
     * Report policy-specific metrics (the owning kernel scopes them
     * under "policy."). Policies without interesting state emit
     * nothing.
     */
    virtual void collectMetrics(obs::MetricSink &sink) const
    { (void)sink; }

    // --- fallback accounting (engine-maintained) -----------------------

    const AllocFailCounts &allocFailCounts() const { return failCounts_; }

    /** FaultEngine: record a terminal allocation failure of kind f. */
    void noteAllocFail(AllocFail f);

    /**
     * Emit the fallback.* counters. The kernel calls this alongside
     * collectMetrics() inside the "policy." scope, so overrides of
     * collectMetrics() cannot lose them.
     */
    void collectFailMetrics(obs::MetricSink &sink) const;

  private:
    AllocFailCounts failCounts_;
};

/**
 * Plain buddy allocation at `order` on `node`, with the failure
 * reason filled in — the shared placement of every non-steering
 * policy (default THP, 4K, Ingens, Ranger, eager overflow).
 */
AllocResult buddyAlloc(Kernel &kernel, unsigned order, NodeId node);

/**
 * Default paging with THP: the stock Linux behaviour the paper
 * compares against. Huge (2 MiB) faults when alignment allows, plain
 * buddy allocations, no placement steering.
 */
class DefaultThpPolicy : public AllocationPolicy
{
  public:
    std::string name() const override { return "default-thp"; }

    AllocResult allocate(Kernel &kernel, Process &proc, Vma &vma,
                         Vpn vpn, unsigned order) override;
};

/**
 * Default paging restricted to 4 KiB faults (the paper's "4K"
 * baseline; also the bloat baseline of Table VI).
 */
class Base4kPolicy : public AllocationPolicy
{
  public:
    std::string name() const override { return "base-4k"; }

    bool allowsHugeFaults() const override { return false; }

    AllocResult allocate(Kernel &kernel, Process &proc, Vma &vma,
                         Vpn vpn, unsigned order) override;
};

} // namespace contig

#endif // CONTIG_MM_POLICY_HH
