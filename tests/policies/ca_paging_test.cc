#include <gtest/gtest.h>

#include "mm/kernel.hh"
#include "policies/ca_paging.hh"

using namespace contig;

namespace
{

KernelConfig
smallConfig()
{
    KernelConfig cfg;
    cfg.phys.bytesPerNode = 256ull << 20;
    cfg.phys.numNodes = 2;
    return cfg;
}

struct CaTest : public ::testing::Test
{
    CaTest()
    {
        auto policy = std::make_unique<CaPagingPolicy>();
        ca = policy.get();
        kernel = std::make_unique<Kernel>(smallConfig(), std::move(policy));
    }

    std::unique_ptr<Kernel> kernel;
    CaPagingPolicy *ca = nullptr;
};

/** Longest run of contiguous (vpn - pfn) offsets, in pages. */
std::uint64_t
largestContiguousRun(const Process &proc)
{
    std::uint64_t best = 0, cur = 0;
    std::int64_t last_off = 0;
    Vpn last_end = 0;
    bool have = false;
    proc.pageTable().forEachLeaf([&](Vpn vpn, const Mapping &m) {
        std::int64_t off = static_cast<std::int64_t>(vpn) -
                           static_cast<std::int64_t>(m.pfn);
        std::uint64_t n = pagesInOrder(m.order);
        if (have && off == last_off && vpn == last_end) {
            cur += n;
        } else {
            cur = n;
        }
        last_off = off;
        last_end = vpn + n;
        have = true;
        best = std::max(best, cur);
    });
    return best;
}

} // namespace

TEST_F(CaTest, SequentialTouchesFormOneMapping)
{
    Process &p = kernel->createProcess("t");
    const std::uint64_t bytes = 64ull << 20; // 64 MiB
    Vma &vma = p.mmap(bytes);
    p.touchRange(vma.start(), bytes);

    // One placement, everything else extends it through the Offset.
    EXPECT_EQ(ca->stats().placements, 1u);
    EXPECT_EQ(ca->stats().subVmaPlacements, 0u);
    EXPECT_EQ(ca->stats().offsetMisses, 0u);
    EXPECT_EQ(largestContiguousRun(p), bytes >> kPageShift);
}

TEST_F(CaTest, RandomTouchOrderStillContiguous)
{
    // Once the placement is anchored by the first fault, the Offset
    // makes every later fault land on its slot regardless of order.
    Process &p = kernel->createProcess("t");
    const std::uint64_t huge_count = 16;
    Vma &vma = p.mmap(huge_count * kHugeSize);
    std::vector<std::uint64_t> order{0, 7, 3, 15, 9, 1, 14, 2,
                                     8, 5, 12, 4, 11, 6, 13, 10};
    for (auto i : order)
        p.touch(vma.start() + i * kHugeSize);
    EXPECT_EQ(largestContiguousRun(p), huge_count * 512);
    EXPECT_EQ(ca->stats().offsetMisses, 0u);
}

TEST_F(CaTest, MidVmaFirstFaultTriggersSubPlacements)
{
    // If the first fault lands mid-VMA, pages below the anchor fall
    // before the chosen region; CA recovers with sub-VMA placements
    // (best-effort, as the paper describes).
    Process &p = kernel->createProcess("t");
    const std::uint64_t huge_count = 16;
    Vma &vma = p.mmap(huge_count * kHugeSize);
    for (std::uint64_t i = 8; i < huge_count; ++i)
        p.touch(vma.start() + i * kHugeSize);
    for (std::uint64_t i = 0; i < 8; ++i)
        p.touch(vma.start() + i * kHugeSize);
    // Everything is mapped, in at most a handful of contiguous runs.
    EXPECT_EQ(vma.allocatedPages, huge_count * 512);
    EXPECT_GE(largestContiguousRun(p), 8u * 512);
    EXPECT_LE(vma.caOffsetCount(), 4u);
}

TEST_F(CaTest, TwoVmasGetDisjointRegions)
{
    Process &p = kernel->createProcess("t");
    Vma &a = p.mmap(16 * kHugeSize);
    Vma &b = p.mmap(16 * kHugeSize);
    p.touchRange(a.start(), a.bytes());
    p.touchRange(b.start(), b.bytes());
    // Both fully contiguous (the next-fit rover keeps them apart).
    EXPECT_EQ(largestContiguousRun(p), 16u * 512);
    EXPECT_EQ(ca->stats().placements, 2u);
    EXPECT_EQ(ca->stats().offsetMisses, 0u);

    auto ma = p.pageTable().lookup(a.start().pageNumber());
    auto mb = p.pageTable().lookup(b.start().pageNumber());
    ASSERT_TRUE(ma && mb);
    EXPECT_NE(ma->pfn, mb->pfn);
}

TEST_F(CaTest, OccupiedTargetTriggersSubVmaPlacement)
{
    Process &p = kernel->createProcess("t");
    Vma &vma = p.mmap(32 * kHugeSize);
    // Fault the first half.
    p.touchRange(vma.start(), 16 * kHugeSize);

    // An interloper occupies the frames right after the mapping: the
    // would-be target of the next huge fault.
    auto m = p.pageTable().lookup(vma.start().pageNumber());
    ASSERT_TRUE(m);
    Pfn next_target = m->pfn + 16 * 512;
    ASSERT_TRUE(kernel->physMem().allocSpecific(next_target, kHugeOrder));

    p.touch(vma.start() + 16 * kHugeSize);
    EXPECT_EQ(ca->stats().offsetMisses, 1u);
    EXPECT_EQ(ca->stats().subVmaPlacements, 1u);
    EXPECT_EQ(vma.caOffsetCount(), 2u);

    // The rest of the VMA keeps extending the *new* sub-region.
    p.touchRange(vma.start() + 17 * kHugeSize, 15 * kHugeSize);
    EXPECT_EQ(ca->stats().subVmaPlacements, 1u);
}

TEST_F(CaTest, Base4kFailureFallsBack)
{
    KernelConfig cfg = smallConfig();
    cfg.thpEnabled = false;
    auto policy = std::make_unique<CaPagingPolicy>();
    auto *pol = policy.get();
    Kernel k(cfg, std::move(policy));

    Process &p = k.createProcess("t");
    Vma &vma = p.mmap(1 << 20);
    p.touch(vma.start());
    auto m = p.pageTable().lookup(vma.start().pageNumber());
    ASSERT_TRUE(m);

    // Occupy the next target page.
    ASSERT_TRUE(k.physMem().allocSpecific(m->pfn + 1, 0));
    p.touch(vma.start() + kPageSize);
    EXPECT_EQ(pol->stats().fallbacks, 1u);
    // No new Offset was tracked for the fallback.
    EXPECT_EQ(vma.caOffsetCount(), 1u);
}

TEST_F(CaTest, ContigBitsMarkedBeyondThreshold)
{
    Process &p = kernel->createProcess("t");
    Vma &vma = p.mmap(4 * kHugeSize);
    // First huge fault: 512 pages >= 32-page threshold, marked at once.
    p.touch(vma.start());
    auto m = p.pageTable().lookup(vma.start().pageNumber());
    ASSERT_TRUE(m);
    EXPECT_TRUE(m->contigBit);
    EXPECT_GT(ca->stats().markedPtes, 0u);
}

TEST_F(CaTest, ContigBitsRespectThresholdFor4k)
{
    KernelConfig cfg = smallConfig();
    cfg.thpEnabled = false;
    auto policy = std::make_unique<CaPagingPolicy>();
    Kernel k(cfg, std::move(policy));

    Process &p = k.createProcess("t");
    Vma &vma = p.mmap(1 << 20);
    // Touch 16 pages: below the 32-page threshold.
    p.touchRange(vma.start(), 16 * kPageSize);
    auto m = p.pageTable().lookup(vma.start().pageNumber());
    ASSERT_TRUE(m);
    EXPECT_FALSE(m->contigBit);

    // Crossing the threshold marks the whole run retroactively.
    p.touchRange(vma.start() + 16 * kPageSize, 16 * kPageSize);
    m = p.pageTable().lookup(vma.start().pageNumber());
    EXPECT_TRUE(m->contigBit);
    m = p.pageTable().lookup(vma.start().pageNumber() + 31);
    EXPECT_TRUE(m->contigBit);
}

TEST_F(CaTest, FilePagesAllocatedContiguously)
{
    File &f = kernel->createFile(1024);
    Process &p = kernel->createProcess("t");
    Vma &v = p.mmapFile(f.id(), 1024 * kPageSize);
    for (std::uint64_t i = 0; i < 1024; ++i)
        p.touch(v.start() + i * kPageSize, Access::Read);

    // All file pages must form one physically contiguous run.
    ASSERT_TRUE(f.caOffsetPages.has_value());
    Pfn first = f.frameFor(0);
    for (std::uint64_t i = 1; i < 1024; ++i)
        EXPECT_EQ(f.frameFor(i), first + i) << "page " << i;
    EXPECT_EQ(ca->stats().filePlacements, 1u);
}

TEST_F(CaTest, PlacementPrefersHomeNode)
{
    Process &p0 = kernel->createProcess("n0", 0);
    Process &p1 = kernel->createProcess("n1", 1);
    Vma &v0 = p0.mmap(8 * kHugeSize);
    Vma &v1 = p1.mmap(8 * kHugeSize);
    p0.touch(v0.start());
    p1.touch(v1.start());
    auto m0 = p0.pageTable().lookup(v0.start().pageNumber());
    auto m1 = p1.pageTable().lookup(v1.start().pageNumber());
    EXPECT_EQ(kernel->physMem().zoneOf(m0->pfn).node(), 0u);
    EXPECT_EQ(kernel->physMem().zoneOf(m1->pfn).node(), 1u);
}

TEST_F(CaTest, SpillsToRemoteNodeWhenHomeExhausted)
{
    // Exhaust node 0's top-order blocks.
    PhysicalMemory &pm = kernel->physMem();
    while (pm.zone(0).buddy().alloc(kMaxOrder))
        ;
    Process &p = kernel->createProcess("t", 0);
    Vma &vma = p.mmap(8 * kHugeSize);
    p.touchRange(vma.start(), vma.bytes());
    auto m = p.pageTable().lookup(vma.start().pageNumber());
    ASSERT_TRUE(m);
    EXPECT_EQ(pm.zoneOf(m->pfn).node(), 1u);
    EXPECT_EQ(largestContiguousRun(p), 8u * 512);
}
