#include "tlb/tlb.hh"

#include "base/logging.hh"
#include "obs/metrics.hh"
#include "base/serialize.hh"

namespace contig
{

namespace
{

/** Largest power of two <= n (n >= 1). */
unsigned
prevPow2(unsigned n)
{
    unsigned p = 1;
    while (p * 2 <= n)
        p *= 2;
    return p;
}

} // namespace

Tlb::Tlb(const TlbConfig &cfg, unsigned page_order)
    : cfg_(cfg), pageOrder_(page_order),
      wayStride_(simd::padLanes(cfg.ways)),
      tags_(cfg.sets * simd::padLanes(cfg.ways), simd::kNoTag64),
      valid_(cfg.sets * simd::padLanes(cfg.ways), 0),
      lastUse_(cfg.sets * simd::padLanes(cfg.ways), 0),
      simd_(simd::enabled())
{
    contig_assert(cfg.sets > 0 && cfg.ways > 0, "degenerate TLB");
    // The set index is tag & (sets - 1): a non-power-of-two set count
    // would silently alias sets together. Configs are user input, so
    // reject them cleanly rather than assert.
    if ((cfg.sets & (cfg.sets - 1)) != 0)
        fatal("TLB set count must be a power of two, got %u "
              "(round to %u or %u)",
              cfg.sets, prevPow2(cfg.sets), prevPow2(cfg.sets) * 2);
}

void
Tlb::fillVictim(unsigned base, Vpn tag)
{
    contig_assert(tag != simd::kNoTag64, "vpn tag collides with the "
                  "invalid-lane sentinel");
    // First invalid way wins; otherwise the strict-minimum lastUse
    // among the valid ways (= earliest way on ties), exactly as the
    // pre-SoA single-pass scan chose.
    unsigned victim = 0;
    bool haveInvalid = false;
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        if (!valid_[base + w]) {
            victim = w;
            haveInvalid = true;
            break;
        }
        if (lastUse_[base + w] < lastUse_[base + victim])
            victim = w;
    }
    if (!haveInvalid)
        ++stats_.evictions;
    valid_[base + victim] = 1;
    tags_[base + victim] = tag;
    lastUse_[base + victim] = ++clock_;
}

bool
Tlb::lookupRef(Vpn vpn)
{
    // The pre-SoA per-way scan, verbatim modulo the lane indexing:
    // valid checked explicitly, ways walked in order with an early
    // exit. Must stay out of line — XlatEngine::Reference measures
    // the historical call structure.
    ++stats_.lookups;
    const Vpn tag = tagOf(vpn);
    const unsigned base = setOf(vpn) * wayStride_;
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        if (valid_[base + w] && tags_[base + w] == tag) {
            lastUse_[base + w] = ++clock_;
            ++stats_.hits;
            return true;
        }
    }
    return false;
}

void
Tlb::fillRef(Vpn vpn)
{
    ++stats_.fills;
    const Vpn tag = tagOf(vpn);
    const unsigned base = setOf(vpn) * wayStride_;
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        if (valid_[base + w] && tags_[base + w] == tag) {
            lastUse_[base + w] = ++clock_; // refill of a present entry
            return;
        }
    }
    fillVictim(base, tag);
}

void
Tlb::flush()
{
    // Invalidate by restoring the tag-lane sentinel; lastUse is kept,
    // matching the pre-SoA flush (victim selection never reads the
    // lastUse of an invalid way).
    for (std::size_t i = 0; i < valid_.size(); ++i) {
        valid_[i] = 0;
        tags_[i] = simd::kNoTag64;
    }
}

TlbHierarchy::TlbHierarchy(const TlbHierConfig &cfg)
    : l1_4k_(cfg.l1_4k, 0), l1_2m_(cfg.l1_2m, kHugeOrder),
      l2_4k_({cfg.l2.sets, (cfg.l2.ways + 1) / 2}, 0),
      l2_2m_({cfg.l2.sets, (cfg.l2.ways + 1) / 2}, kHugeOrder)
{
    // Each page-size array gets half the unified budget; an odd way
    // count would round both halves up and quietly model a bigger L2
    // than configured.
    if (2 * ((cfg.l2.ways + 1) / 2) != cfg.l2.ways)
        fatal("unified L2 TLB way count must be even to split across "
              "page sizes, got %u (round to %u or %u)",
              cfg.l2.ways, cfg.l2.ways - 1, cfg.l2.ways + 1);
}

TlbLevel
TlbHierarchy::accessRef(Vpn vpn, unsigned order)
{
    ++accesses_;
    Tlb &l1 = (order == kHugeOrder) ? l1_2m_ : l1_4k_;
    if (l1.lookupRef(vpn))
        return TlbLevel::L1;
    Tlb &l2 = (order == kHugeOrder) ? l2_2m_ : l2_4k_;
    if (l2.lookupRef(vpn)) {
        l1.fillRef(vpn); // promote to L1
        return TlbLevel::L2;
    }
    ++l2Misses_;
    return TlbLevel::Miss;
}

void
TlbHierarchy::fillRef(Vpn vpn, unsigned order)
{
    Tlb &l1 = (order == kHugeOrder) ? l1_2m_ : l1_4k_;
    Tlb &l2 = (order == kHugeOrder) ? l2_2m_ : l2_4k_;
    l1.fillRef(vpn);
    l2.fillRef(vpn);
}

void
TlbHierarchy::flush()
{
    l1_4k_.flush();
    l1_2m_.flush();
    l2_4k_.flush();
    l2_2m_.flush();
}

void
TlbHierarchy::setSimd(bool simd)
{
    l1_4k_.setSimd(simd);
    l1_2m_.setSimd(simd);
    l2_4k_.setSimd(simd);
    l2_2m_.setSimd(simd);
}

void
Tlb::collectMetrics(obs::MetricSink &sink) const
{
    sink.counter("lookups", stats_.lookups);
    sink.counter("hits", stats_.hits);
    sink.counter("fills", stats_.fills);
    sink.counter("evictions", stats_.evictions);
}

void
TlbHierarchy::collectMetrics(obs::MetricSink &sink) const
{
    {
        obs::MetricSink::Scope s(sink, "l1_4k");
        l1_4k_.collectMetrics(sink);
    }
    {
        obs::MetricSink::Scope s(sink, "l1_2m");
        l1_2m_.collectMetrics(sink);
    }
    {
        obs::MetricSink::Scope s(sink, "l2_4k");
        l2_4k_.collectMetrics(sink);
    }
    {
        obs::MetricSink::Scope s(sink, "l2_2m");
        l2_2m_.collectMetrics(sink);
    }
    sink.counter("accesses", accesses_);
    sink.counter("l2_misses", l2Misses_);
}


void
Tlb::saveState(Serializer &s) const
{
    const std::size_t sec = s.beginSection(sectionTag('T', 'L', 'B', ' '));
    s.u32(cfg_.sets);
    s.u32(cfg_.ways);
    s.u32(pageOrder_);
    s.u64(clock_);
    s.u64(stats_.lookups);
    s.u64(stats_.hits);
    s.u64(stats_.fills);
    s.u64(stats_.evictions);
    s.u64(static_cast<std::uint64_t>(cfg_.sets) * cfg_.ways);
    // Padding slots are not checkpointed; invalid slots write a
    // canonical zero tag (the live lane holds the sentinel instead).
    for (unsigned set = 0; set < cfg_.sets; ++set) {
        for (unsigned w = 0; w < cfg_.ways; ++w) {
            const unsigned i = set * wayStride_ + w;
            s.u64(valid_[i] ? tags_[i] : 0);
            s.boolean(valid_[i] != 0);
            s.u64(lastUse_[i]);
        }
    }
    s.endSection(sec);
}

void
Tlb::restoreState(Deserializer &d)
{
    d.expectSection(sectionTag('T', 'L', 'B', ' '), "tlb");
    const unsigned sets = d.u32();
    const unsigned ways = d.u32();
    const unsigned order = d.u32();
    if (sets != cfg_.sets || ways != cfg_.ways || order != pageOrder_)
        fatal("checkpoint TLB geometry mismatch: file has %ux%u order"
              " %u, this run has %ux%u order %u",
              sets, ways, order, cfg_.sets, cfg_.ways, pageOrder_);
    clock_ = d.u64();
    stats_.lookups = d.u64();
    stats_.hits = d.u64();
    stats_.fills = d.u64();
    stats_.evictions = d.u64();
    const std::uint64_t n = d.u64();
    if (n != static_cast<std::uint64_t>(cfg_.sets) * cfg_.ways)
        fatal("checkpoint TLB entry count mismatch: %llu vs %llu",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(cfg_.sets) * cfg_.ways);
    for (unsigned set = 0; set < cfg_.sets; ++set) {
        for (unsigned w = 0; w < cfg_.ways; ++w) {
            const unsigned i = set * wayStride_ + w;
            const std::uint64_t tag = d.u64();
            valid_[i] = d.boolean() ? 1 : 0;
            tags_[i] = valid_[i] ? tag : simd::kNoTag64;
            lastUse_[i] = d.u64();
        }
    }
}

void
TlbHierarchy::saveState(Serializer &s) const
{
    const std::size_t sec = s.beginSection(sectionTag('T', 'L', 'B', 'H'));
    s.u64(accesses_);
    s.u64(l2Misses_);
    l1_4k_.saveState(s);
    l1_2m_.saveState(s);
    l2_4k_.saveState(s);
    l2_2m_.saveState(s);
    s.endSection(sec);
}

void
TlbHierarchy::restoreState(Deserializer &d)
{
    d.expectSection(sectionTag('T', 'L', 'B', 'H'), "tlb_hierarchy");
    accesses_ = d.u64();
    l2Misses_ = d.u64();
    l1_4k_.restoreState(d);
    l1_2m_.restoreState(d);
    l2_4k_.restoreState(d);
    l2_2m_.restoreState(d);
}

} // namespace contig
