#include "phys/contiguity_map.hh"

#include <mutex>

#include "base/align.hh"
#include "base/lock_stats.hh"
#include "base/logging.hh"
#include "obs/metrics.hh"

namespace contig
{

ContiguityMap::ContiguityMap(std::uint64_t block_pages, unsigned stripes,
                             Pfn base_pfn, std::uint64_t span_pages)
    : blockPages_(block_pages), basePfn_(base_pfn), stripeSpan_(0),
      stripes_(stripes > 1 ? stripes : 1)
{
    contig_assert(block_pages > 0, "block size must be positive");
    if (stripes_.size() > 1) {
        contig_assert(span_pages > 0,
                      "striped contiguity map needs the zone span");
        // Equal address slices, rounded up to whole top-order blocks;
        // stripeOf() clamps so the last stripe absorbs any remainder.
        const std::uint64_t per =
            (span_pages + stripes_.size() - 1) / stripes_.size();
        stripeSpan_ = alignUp(per, blockPages_);
    }
}

unsigned
ContiguityMap::stripeOf(Pfn pfn) const
{
    if (stripes_.size() == 1)
        return 0;
    const std::uint64_t idx = (pfn - basePfn_) / stripeSpan_;
    const std::uint64_t last = stripes_.size() - 1;
    return static_cast<unsigned>(idx < last ? idx : last);
}

void
ContiguityMap::onBlockFree(Pfn block_base)
{
    Stripe &st = stripes_[stripeOf(block_base)];
    std::lock_guard<SpinLock> g(st.lock);
    ++st.stats.inserts;
    st.trackedPages += blockPages_;

    Pfn start = block_base;
    std::uint64_t pages = blockPages_;

    // Merge with a preceding cluster that ends exactly at block_base.
    // Stripes partition the span at block granularity, so both merge
    // candidates live in this stripe's map; runs crossing a stripe
    // boundary simply stay as one cluster per side.
    auto next = st.clusters.upper_bound(block_base);
    if (next != st.clusters.begin()) {
        auto prev = std::prev(next);
        contig_assert(prev->first + prev->second <= block_base,
                      "block freed inside an existing cluster");
        if (prev->first + prev->second == block_base) {
            start = prev->first;
            pages += prev->second;
            ++st.stats.merges;
            next = st.clusters.erase(prev);
        }
    }
    // Merge with a following cluster that starts exactly at the end.
    if (next != st.clusters.end() &&
        next->first == block_base + blockPages_) {
        pages += next->second;
        ++st.stats.merges;
        if (st.roverValid && st.rover == next->first)
            st.rover = start;
        st.clusters.erase(next);
    }
    st.clusters[start] = pages;
}

void
ContiguityMap::onBlockAllocated(Pfn block_base)
{
    Stripe &st = stripes_[stripeOf(block_base)];
    std::lock_guard<SpinLock> g(st.lock);
    ++st.stats.removes;
    auto it = st.clusters.upper_bound(block_base);
    contig_assert(it != st.clusters.begin(),
                  "allocated block not tracked by contiguity map");
    --it;
    contig_assert(it->first <= block_base &&
                      block_base + blockPages_ <= it->first + it->second,
                  "allocated block not inside its cluster");

    const Pfn start = it->first;
    const std::uint64_t pages = it->second;
    const bool rover_here = st.roverValid && st.rover == start;
    st.clusters.erase(it);
    st.trackedPages -= blockPages_;

    const std::uint64_t left = block_base - start;
    const std::uint64_t right = (start + pages) - (block_base + blockPages_);
    if (left > 0)
        st.clusters[start] = left;
    if (right > 0)
        st.clusters[block_base + blockPages_] = right;
    if (left > 0 && right > 0)
        ++st.stats.splits;

    if (rover_here)
        st.rover = right > 0 ? block_base + blockPages_
                             : (left > 0 ? start : st.rover);
    if (st.clusters.empty())
        st.roverValid = false;
}

ContiguityMap::Map::const_iterator
ContiguityMap::roverIter(const Stripe &st) const
{
    if (st.clusters.empty())
        return st.clusters.end();
    if (!st.roverValid)
        return st.clusters.begin();
    // The rover may point into the middle of a cluster (just past the
    // previous placement's reservation): find the cluster containing
    // it, else the next one.
    auto it = st.clusters.upper_bound(st.rover);
    if (it != st.clusters.begin()) {
        auto prev = std::prev(it);
        if (st.rover < prev->first + prev->second)
            return prev;
    }
    // A rover past every cluster returns end() — the ring scan then
    // moves on to the next stripe and revisits this stripe's prefix
    // on its wrap pass (with one stripe, the wrap pass IS the legacy
    // wrap-to-begin).
    return it;
}

void
ContiguityMap::advanceRover(Stripe &st, unsigned si, Pfn region_start,
                            std::uint64_t used)
{
    // True next-fit: placements resume from where the previous one
    // left off — *past its reservation* — so consecutive placement
    // requests (other VMAs, page-cache readahead, other processes)
    // are steered away from the region a previous placement is still
    // filling on demand (the racing deferral of §III-C).
    st.rover = region_start + alignUp(used, blockPages_);
    st.roverValid = true;
    roverStripe_.store(si, std::memory_order_relaxed);
}

std::optional<Cluster>
ContiguityMap::placeNextFit(std::uint64_t req_pages)
{
    const unsigned n = stripes();
    const unsigned r = roverStripe_.load(std::memory_order_relaxed) % n;

    // Ring scan over the stripes starting at the rover stripe. Pass
    // k == 0 scans [roverIter, end) of the entry stripe, passes
    // 1..n-1 scan the following stripes in full, and pass n revisits
    // the entry stripe's [begin, start_key) prefix — together every
    // cluster exactly once, in the same order the unsharded do-while
    // ring walks them (so one stripe degrades to the legacy scan,
    // stats included). Only one stripe lock is held at a time; under
    // concurrency a cluster may move between passes, which is the
    // same advisory race as the probe-then-claim placement itself.
    Pfn start_key = 0;
    Cluster best{0, 0};
    unsigned best_stripe = 0;
    for (unsigned k = 0; k <= n; ++k) {
        const unsigned si = (r + k) % n;
        Stripe &st = stripes_[si];
        std::lock_guard<SpinLock> g(st.lock);
        if (k == 0)
            ++st.stats.placements;

        Map::const_iterator it, stop;
        bool rover_partial = false;
        if (k == 0) {
            it = roverIter(st);
            stop = st.clusters.end();
            if (it == stop) {
                // Rover past every cluster: pass 0 scans nothing and
                // the wrap pass must cover this stripe in full.
                start_key = ~static_cast<Pfn>(0);
                continue;
            }
            start_key = it->first;
            rover_partial = true;
        } else if (k < n) {
            it = st.clusters.begin();
            stop = st.clusters.end();
        } else {
            // Wrap: the entry stripe again, up to where pass 0 began.
            it = st.clusters.begin();
            stop = st.clusters.lower_bound(start_key);
        }

        for (; it != stop; ++it) {
            ++st.stats.placementScanSteps;
            // For the cluster containing the rover, only the part at
            // and after the rover is considered (we "left off" there).
            Pfn usable_start = it->first;
            std::uint64_t usable_pages = it->second;
            if (rover_partial && st.roverValid && st.rover > it->first &&
                st.rover < it->first + it->second) {
                usable_start = st.rover;
                usable_pages = it->first + it->second - st.rover;
            }
            rover_partial = false;

            if (usable_pages >= req_pages) {
                advanceRover(st, si, usable_start, req_pages);
                return Cluster{usable_start, usable_pages};
            }
            if (usable_pages > best.pages) {
                best = Cluster{usable_start, usable_pages};
                best_stripe = si;
            }
        }
    }

    // Nothing fits: next-fit settles for the largest region found.
    if (best.pages == 0)
        return std::nullopt;
    {
        Stripe &st = stripes_[best_stripe];
        std::lock_guard<SpinLock> g(st.lock);
        advanceRover(st, best_stripe, best.startPfn, best.pages);
    }
    return best;
}

std::optional<Cluster>
ContiguityMap::placeBestFit(std::uint64_t req_pages) const
{
    Cluster best_fit{0, 0};
    Cluster largest{0, 0};
    bool any = false;
    for (const Stripe &st : stripes_) {
        std::lock_guard<SpinLock> g(st.lock);
        for (const auto &kv : st.clusters) {
            any = true;
            if (kv.second > largest.pages)
                largest = Cluster{kv.first, kv.second};
            if (kv.second >= req_pages &&
                (best_fit.pages == 0 || kv.second < best_fit.pages)) {
                best_fit = Cluster{kv.first, kv.second};
            }
        }
    }
    if (!any)
        return std::nullopt;
    return best_fit.pages > 0 ? best_fit : largest;
}

std::optional<Cluster>
ContiguityMap::largest() const
{
    Cluster largest{0, 0};
    bool any = false;
    for (const Stripe &st : stripes_) {
        std::lock_guard<SpinLock> g(st.lock);
        for (const auto &kv : st.clusters) {
            any = true;
            if (kv.second > largest.pages)
                largest = Cluster{kv.first, kv.second};
        }
    }
    if (!any)
        return std::nullopt;
    return largest;
}

std::uint64_t
ContiguityMap::clusterCount() const
{
    std::uint64_t n = 0;
    for (const Stripe &st : stripes_) {
        std::lock_guard<SpinLock> g(st.lock);
        n += st.clusters.size();
    }
    return n;
}

std::uint64_t
ContiguityMap::freePagesTracked() const
{
    std::uint64_t n = 0;
    for (const Stripe &st : stripes_) {
        std::lock_guard<SpinLock> g(st.lock);
        n += st.trackedPages;
    }
    return n;
}

std::vector<Cluster>
ContiguityMap::snapshot() const
{
    // Stripes partition the span in ascending address order, so
    // concatenating their (sorted) maps keeps the global order.
    std::vector<Cluster> out;
    for (const Stripe &st : stripes_) {
        std::lock_guard<SpinLock> g(st.lock);
        for (const auto &kv : st.clusters)
            out.push_back(Cluster{kv.first, kv.second});
    }
    return out;
}

Log2Histogram
ContiguityMap::clusterSizeHistogram() const
{
    Log2Histogram hist;
    for (const Stripe &st : stripes_) {
        std::lock_guard<SpinLock> g(st.lock);
        for (const auto &[start, len] : st.clusters)
            hist.add(len, len);
    }
    return hist;
}

ContiguityMapStats
ContiguityMap::stats() const
{
    ContiguityMapStats total;
    for (const Stripe &st : stripes_) {
        std::lock_guard<SpinLock> g(st.lock);
        total.inserts += st.stats.inserts;
        total.removes += st.stats.removes;
        total.merges += st.stats.merges;
        total.splits += st.stats.splits;
        total.placements += st.stats.placements;
        total.placementScanSteps += st.stats.placementScanSteps;
    }
    return total;
}

void
ContiguityMap::bindLockStats(const std::string &prefix)
{
    for (std::size_t i = 0; i < stripes_.size(); ++i) {
        stripes_[i].lock.bindStats(
            &LockStatsRegistry::global().site(prefix + std::to_string(i)));
    }
}

bool
ContiguityMap::checkInvariants() const
{
    for (std::size_t si = 0; si < stripes_.size(); ++si) {
        const Stripe &st = stripes_[si];
        std::lock_guard<SpinLock> g(st.lock);
        std::uint64_t pages = 0;
        Pfn prev_end = 0;
        bool first = true;
        for (const auto &[start, len] : st.clusters) {
            if (len == 0 || len % blockPages_ != 0 ||
                start % blockPages_ != 0) {
                return false;
            }
            // Clusters must be maximal: no two adjacent clusters may
            // touch (within a stripe; boundary-adjacent clusters of
            // neighbouring stripes are deliberately kept separate).
            if (!first && start <= prev_end)
                return false;
            // Every block of the cluster must route to this stripe.
            if (stripes_.size() > 1 &&
                (stripeOf(start) != si ||
                 stripeOf(start + len - blockPages_) != si)) {
                return false;
            }
            prev_end = start + len;
            pages += len;
            first = false;
        }
        if (pages != st.trackedPages)
            return false;
    }
    return true;
}

void
ContiguityMap::collectMetrics(obs::MetricSink &sink) const
{
    const ContiguityMapStats s = stats();
    sink.counter("inserts", s.inserts);
    sink.counter("removes", s.removes);
    sink.counter("merges", s.merges);
    sink.counter("splits", s.splits);
    sink.counter("placements", s.placements);
    sink.counter("placement_scan_steps", s.placementScanSteps);
    sink.gauge("clusters", static_cast<double>(clusterCount()));
    sink.gauge("free_pages_tracked",
               static_cast<double>(freePagesTracked()));
    Log2Histogram sizes;
    for (const Stripe &st : stripes_) {
        std::lock_guard<SpinLock> g(st.lock);
        for (const auto &[start, len] : st.clusters)
            sizes.add(len);
    }
    sink.histogram("cluster_pages", sizes);
}

} // namespace contig
