# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_base "/root/repo/build/tests/test_base")
set_tests_properties(test_base PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;add_contig_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_phys "/root/repo/build/tests/test_phys")
set_tests_properties(test_phys PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;14;add_contig_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_mm "/root/repo/build/tests/test_mm")
set_tests_properties(test_mm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;20;add_contig_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_policies "/root/repo/build/tests/test_policies")
set_tests_properties(test_policies PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;27;add_contig_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_virt "/root/repo/build/tests/test_virt")
set_tests_properties(test_virt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;32;add_contig_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_tlb "/root/repo/build/tests/test_tlb")
set_tests_properties(test_tlb PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;35;add_contig_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_spot "/root/repo/build/tests/test_spot")
set_tests_properties(test_spot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;40;add_contig_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_ranges "/root/repo/build/tests/test_ranges")
set_tests_properties(test_ranges PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;43;add_contig_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_contig "/root/repo/build/tests/test_contig")
set_tests_properties(test_contig PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;46;add_contig_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_workloads "/root/repo/build/tests/test_workloads")
set_tests_properties(test_workloads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;49;add_contig_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_perfmodel "/root/repo/build/tests/test_perfmodel")
set_tests_properties(test_perfmodel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;52;add_contig_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;55;add_contig_test;/root/repo/tests/CMakeLists.txt;0;")
