file(REMOVE_RECURSE
  "CMakeFiles/table6_bloat.dir/table6_bloat.cc.o"
  "CMakeFiles/table6_bloat.dir/table6_bloat.cc.o.d"
  "table6_bloat"
  "table6_bloat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_bloat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
