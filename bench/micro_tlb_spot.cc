/**
 * @file
 * Micro-benchmark: throughput of the translation components — TLB
 * hierarchy lookups, the SpOT prediction engine, and the full
 * virtualized replay pipeline — the per-access cost that bounds how
 * many simulated accesses the figure benches can afford.
 *
 * Emits schema_version-2 BenchOutput rows. All simulated counters are
 * deterministic and gated by the committed baseline
 * (bench/baselines/BENCH_micro_tlb_spot.json); wall-clock columns are
 * named `*.wall_us` so `contig_inspect check-baseline` ignores them.
 */

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/bench_io.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "tlb/replay.hh"
#include "workloads/access_stream.hh"

using namespace contig;

namespace
{

constexpr std::uint64_t kTlbLookups = 1u << 20;
constexpr std::uint64_t kSpotIters = 1u << 20;
constexpr std::uint64_t kPipelineAccesses = 1u << 20;

double
wallUs(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

void
tlbRows(Report &rep)
{
    for (unsigned pages_log2 : {3u, 8u}) {
        TlbHierarchy tlb(ScaledDefaults::tlb());
        Rng rng(7);
        const std::uint64_t pages = 1u << pages_log2;
        std::uint64_t l1 = 0, l2 = 0, miss = 0;
        const double us = wallUs([&] {
            for (std::uint64_t i = 0; i < kTlbLookups; ++i) {
                Vpn vpn = rng.below(pages) * 512;
                switch (tlb.access(vpn, kHugeOrder)) {
                  case TlbLevel::L1: ++l1; break;
                  case TlbLevel::L2: ++l2; break;
                  case TlbLevel::Miss:
                    ++miss;
                    tlb.fill(vpn, kHugeOrder);
                    break;
                }
            }
        });
        rep.row({"tlb_2m_" + std::to_string(pages) + "p",
                 std::to_string(kTlbLookups), std::to_string(l1),
                 std::to_string(l2), std::to_string(miss),
                 Report::num(us, 1),
                 Report::num(kTlbLookups / us, 2)});
    }
}

void
spotRow(Report &rep)
{
    SpotEngine spot(ScaledDefaults::spot());
    Rng rng(7);
    std::uint64_t correct = 0, mispred = 0, nopred = 0;
    const double us = wallUs([&] {
        for (std::uint64_t i = 0; i < kSpotIters; ++i) {
            Addr pc = 0x400000 + (rng.below(8) << 6);
            spot.predict(pc);
            switch (spot.update(pc, 12345, true)) {
              case SpotOutcome::Correct: ++correct; break;
              case SpotOutcome::Mispredicted: ++mispred; break;
              case SpotOutcome::NoPrediction: ++nopred; break;
            }
        }
    });
    rep.row({"spot_predict_update", std::to_string(kSpotIters),
             std::to_string(correct), std::to_string(mispred),
             std::to_string(nopred), Report::num(us, 1),
             Report::num(kSpotIters / us, 2)});
}

} // namespace

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("micro_tlb_spot", argc, argv);
    out.note("tlb_lookups", kTlbLookups);
    out.note("spot_iters", kSpotIters);
    out.note("pipeline_accesses", kPipelineAccesses);

    Report comp("micro — translation component throughput");
    comp.header({"component", "items", "c0", "c1", "c2",
                 "items.wall_us", "mitems_s.wall_us"});
    tlbRows(comp);
    spotRow(comp);
    out.add(comp);
    comp.print();

    // The full virtualized per-access pipeline on a real workload:
    // one pre-generated pagerank access trace replayed through each
    // scheme, so the three rows see the identical access sequence.
    VirtSystem sys(PolicyKind::Ca, PolicyKind::Ca, 7);
    auto wl = makeWorkload("pagerank", {0.25, 7});
    Process &proc = sys.guest().createProcess("bench");
    wl->setup(proc);

    std::vector<MemAccess> trace(kPipelineAccesses);
    {
        Rng rng(9);
        wl->fillAccesses(rng, trace.data(), trace.size());
    }

    Report pipe("micro — virtualized replay pipeline (pagerank 0.25)");
    pipe.header({"scheme", "threads", "accesses", "l1_hits", "l2_hits",
                 "walks", "exposed_cycles", "replay.wall_us",
                 "maccs_s.wall_us"});
    const struct { const char *name; XlatScheme scheme; } kSchemes[] = {
        {"base", XlatScheme::Base},
        {"spot", XlatScheme::Spot},
        {"rmm", XlatScheme::Rmm},
    };
    for (const auto &[name, scheme] : kSchemes) {
        XlatConfig cfg;
        cfg.tlb = ScaledDefaults::tlb();
        cfg.walker = ScaledDefaults::walker();
        cfg.scheme = scheme;
        cfg.spot = ScaledDefaults::spot();
        cfg.rangeTlb = ScaledDefaults::rangeTlb();
        ReplayEngine engine(cfg, out.xlatThreads(),
                            wl->process()->pageTable(), sys.vm());
        if (scheme == XlatScheme::Rmm)
            engine.setSegments(extract2d(*wl->process(), sys.vm()));

        const std::uint64_t chunk =
            out.xlatChunk() ? out.xlatChunk() : AccessStream::kDefaultChunk;
        const double us = wallUs([&] {
            for (std::uint64_t off = 0; off < trace.size();
                 off += chunk) {
                const std::uint64_t n =
                    std::min<std::uint64_t>(chunk, trace.size() - off);
                engine.replayChunk(&trace[off], n);
            }
        });
        const XlatStats s = engine.mergedStats();
        pipe.row({name, std::to_string(engine.threads()),
                  std::to_string(s.accesses), std::to_string(s.l1Hits),
                  std::to_string(s.l2Hits), std::to_string(s.walks),
                  std::to_string(s.exposedCycles), Report::num(us, 1),
                  Report::num(s.accesses / us, 2)});
    }
    out.add(pipe);
    pipe.print();

    out.write();
    return 0;
}
