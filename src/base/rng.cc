#include "base/rng.hh"

#include <cmath>

#include "base/logging.hh"

namespace contig
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    contig_assert(bound > 0, "Rng::below bound must be positive");
    // Lemire's nearly-divisionless method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        std::uint64_t t = -bound % bound;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t
Rng::between(std::uint64_t lo, std::uint64_t hi)
{
    contig_assert(lo <= hi, "Rng::between empty range");
    return lo + below(hi - lo + 1);
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double s)
    : n_(n), s_(s)
{
    contig_assert(n > 0, "ZipfSampler needs at least one item");
    if (s_ < 1e-9)
        s_ = 1e-9; // avoid division by zero; ~uniform
    invSMinusOne_ = 1.0 / (1.0 - s_);
    hx0_ = h(0.5) - 1.0;
    hxm_ = h(static_cast<double>(n_) + 0.5);
}

double
ZipfSampler::h(double x) const
{
    if (std::fabs(s_ - 1.0) < 1e-9)
        return std::log(x);
    return std::pow(x, 1.0 - s_) * invSMinusOne_;
}

double
ZipfSampler::hInv(double x) const
{
    if (std::fabs(s_ - 1.0) < 1e-9)
        return std::exp(x);
    return std::pow(x * (1.0 - s_), invSMinusOne_);
}

std::uint64_t
ZipfSampler::sample(Rng &rng)
{
    // Rejection-inversion over the harmonic density.
    while (true) {
        double u = hx0_ + rng.uniform() * (hxm_ - hx0_);
        double x = hInv(u);
        std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        if (k > n_)
            k = n_;
        // Acceptance test: exact for the tail, cheap for the head.
        if (k - x <= 0.5 ||
            u >= h(static_cast<double>(k) + 0.5) -
                     std::pow(static_cast<double>(k), -s_)) {
            return k - 1; // ranks are 0-based
        }
    }
}

} // namespace contig
