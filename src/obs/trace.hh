/**
 * @file
 * Structured event tracing: a fixed-capacity ring buffer of typed
 * events (page faults, allocations, promotions, migrations, TLB
 * misses, SpOT outcomes, nested walks, daemon ticks, phase spans)
 * with Chrome trace_event JSON and JSONL exporters.
 *
 * Cost model:
 *  - compile-time: building with -DCONTIG_TRACING=0 compiles every
 *    CONTIG_TRACE() to nothing;
 *  - runtime: with tracing compiled in (the default), a disabled
 *    category costs exactly one predictable branch on a cached mask
 *    load (verified by bench/micro_obs_overhead.cc). Only enabled
 *    events pay for a clock read and a ring-buffer store.
 *
 * Open exported traces in chrome://tracing or https://ui.perfetto.dev.
 */

#ifndef CONTIG_OBS_TRACE_HH
#define CONTIG_OBS_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/sync.hh"

#ifndef CONTIG_TRACING
#define CONTIG_TRACING 1
#endif

namespace contig
{
namespace obs
{

/** Category bits for the runtime mask. */
enum TraceCategory : std::uint32_t
{
    kCatFault = 1u << 0,   //!< page faults (anon/COW/file, fallbacks)
    kCatAlloc = 1u << 1,   //!< frame claims / placements
    kCatPromote = 1u << 2, //!< huge-page promotions
    kCatMigrate = 1u << 3, //!< page migrations / compaction moves
    kCatTlb = 1u << 4,     //!< L2 TLB misses
    kCatSpot = 1u << 5,    //!< SpOT predict/verify outcomes
    kCatWalk = 1u << 6,    //!< nested (2-D) page walks
    kCatDaemon = 1u << 7,  //!< policy daemon ticks
    kCatPhase = 1u << 8,   //!< scoped phase-timer spans
    kCatReplay = 1u << 9,  //!< translation-replay chunk boundaries
    kCatSync = 1u << 10,   //!< barrier waits / synchronization stalls
    kCatAll = 0xffffffffu,
};

/** Parse "fault,spot,walk" / "all" / "0x1f" into a category mask. */
std::uint32_t parseTraceCategories(std::string_view spec);

/** The typed events. Each kind maps to one descriptor below. */
enum class TraceEventKind : std::uint8_t
{
    PageFault,    //!< args: vpn, pfn, order
    CowFault,     //!< args: vpn, pfn, order
    FileFault,    //!< args: vpn, pfn, file_id
    HugeFallback, //!< args: vpn
    Alloc,        //!< args: pfn, order, owner_id
    Promotion,    //!< args: vpn, pages
    Migration,    //!< args: from_pfn, to_pfn, pages
    TlbL2Miss,    //!< args: vpn
    SpotCorrect,  //!< args: pc, offset
    SpotMispredict, //!< args: pc, offset
    SpotNoPredict,  //!< args: pc
    NestedWalk,   //!< args: vpn, refs, cycles
    DaemonTick,   //!< args: now (faults)
    PhaseSpan,    //!< complete event; args: cycles
    ReplayChunk,  //!< args: chunk, accesses, walks
    BarrierWait,  //!< complete event; args: worker
    NumKinds,
};

/** Static description of one event kind. */
struct TraceEventDesc
{
    const char *name;
    std::uint32_t category;
    /** Chrome-trace arg names; nullptr-terminated by convention. */
    const char *args[3];
};

/** Descriptor table indexed by TraceEventKind. */
constexpr TraceEventDesc kTraceEventDescs[] = {
    {"page_fault", kCatFault, {"vpn", "pfn", "order"}},
    {"cow_fault", kCatFault, {"vpn", "pfn", "order"}},
    {"file_fault", kCatFault, {"vpn", "pfn", "file"}},
    {"huge_fallback", kCatFault, {"vpn", nullptr, nullptr}},
    {"alloc", kCatAlloc, {"pfn", "order", "owner"}},
    {"promotion", kCatPromote, {"vpn", "pages", nullptr}},
    {"migration", kCatMigrate, {"from_pfn", "to_pfn", "pages"}},
    {"tlb_l2_miss", kCatTlb, {"vpn", nullptr, nullptr}},
    {"spot_correct", kCatSpot, {"pc", "offset", nullptr}},
    {"spot_mispredict", kCatSpot, {"pc", "offset", nullptr}},
    {"spot_no_predict", kCatSpot, {"pc", nullptr, nullptr}},
    {"nested_walk", kCatWalk, {"vpn", "refs", "cycles"}},
    {"daemon_tick", kCatDaemon, {"now", nullptr, nullptr}},
    {"phase", kCatPhase, {"cycles", nullptr, nullptr}},
    {"replay_chunk", kCatReplay, {"chunk", "accesses", "walks"}},
    {"barrier_wait", kCatSync, {"worker", nullptr, nullptr}},
};

static_assert(sizeof(kTraceEventDescs) / sizeof(kTraceEventDescs[0]) ==
                  static_cast<std::size_t>(TraceEventKind::NumKinds),
              "descriptor table out of sync with TraceEventKind");

constexpr std::uint32_t
traceCategoryOf(TraceEventKind kind)
{
    return kTraceEventDescs[static_cast<std::size_t>(kind)].category;
}

/** Kinds exported as Chrome complete ('X') events with a duration. */
constexpr bool
traceIsSpanKind(TraceEventKind kind)
{
    return kind == TraceEventKind::PhaseSpan ||
           kind == TraceEventKind::BarrierWait;
}

/** One recorded event (24 B of payload + timing + thread lane). */
struct TraceEvent
{
    std::uint64_t tsNs = 0;  //!< wall-clock ns since sink epoch
    std::uint64_t durNs = 0; //!< span duration (span kinds only)
    std::uint64_t args[3] = {0, 0, 0};
    /** Interned span name (span kinds only), else nullptr. */
    const char *spanName = nullptr;
    /** Recording thread's lane: 0 = main/unbound, i+1 = worker i
     *  (ThisCpu::lane()); becomes the Chrome-trace tid. */
    std::uint32_t tid = 0;
    TraceEventKind kind = TraceEventKind::PageFault;
};

/**
 * The ring buffer. One process-wide instance (global()); records are
 * dropped-oldest once capacity is reached, with a drop counter so
 * exports can say what's missing.
 */
class TraceSink
{
  public:
    static TraceSink &global();

    TraceSink() = default;
    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    /** The hot-path gate: one load + one branch. */
    bool wants(std::uint32_t category) const
    { return (mask_ & category) != 0; }

    std::uint32_t categoryMask() const { return mask_; }
    void setCategoryMask(std::uint32_t mask) { mask_ = mask; }

    /** Resize the ring (drops recorded events). Default 1M events. */
    void setCapacity(std::size_t events);
    std::size_t capacity() const { return capacity_; }

    void record(TraceEventKind kind, std::uint64_t a0 = 0,
                std::uint64_t a1 = 0, std::uint64_t a2 = 0);

    /** Record a completed span (Chrome 'X' event): a phase timer by
     *  default, or a barrier wait etc. via `kind`. */
    void recordSpan(const char *interned_name, std::uint64_t ts_ns,
                    std::uint64_t dur_ns, std::uint64_t a0,
                    TraceEventKind kind = TraceEventKind::PhaseSpan);

    /**
     * Intern a span name: returns a pointer stable for the sink's
     * lifetime. Call once per call site, not per event.
     */
    const char *intern(std::string_view name);

    /** Monotonic ns since the sink's epoch (first use). */
    std::uint64_t nowNs() const;

    std::size_t size() const;
    std::uint64_t recorded() const { return recorded_; }
    std::uint64_t dropped() const { return dropped_; }
    void clear();

    /** Events oldest-first (copies; the ring keeps recording). */
    std::vector<TraceEvent> events() const;

    /**
     * Write the buffer as Chrome trace_event JSON ({"traceEvents":
     * [...]}) loadable by chrome://tracing and Perfetto. Returns
     * false if the file could not be opened.
     */
    bool writeChromeTrace(const std::string &path) const;

    /** Write the buffer as JSON Lines (one event object per line). */
    bool writeJsonl(const std::string &path) const;

  private:
    TraceEvent &nextSlot();

    /**
     * Serializes ring writes from concurrent fault workers. wants()
     * stays lock-free: with the category masked off (the default) the
     * hot path never reaches the lock.
     */
    mutable SpinLock lock_;
    std::uint32_t mask_ = 0;
    std::size_t capacity_ = 1u << 20;
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0; //!< next write position once ring is full
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
    /** Interned span names (stable addresses). */
    std::vector<std::unique_ptr<std::string>> interned_;
    mutable std::int64_t epochNs_ = -1;
};

/**
 * The process-wide sink, constant-initialized (constinit in trace.cc)
 * so TraceSink::global() is a plain address — no function-local-
 * static guard branch on the hot path.
 */
extern TraceSink gTraceSink;

inline TraceSink &
TraceSink::global()
{
    return gTraceSink;
}

} // namespace obs
} // namespace contig

/**
 * The instrumentation macro. Usage:
 *   CONTIG_TRACE(obs::TraceEventKind::PageFault, vpn, pfn, order);
 * Compiles away entirely under -DCONTIG_TRACING=0; otherwise costs a
 * single branch per call site while the category is masked off.
 */
#if CONTIG_TRACING
#define CONTIG_TRACE(kind, ...)                                           \
    do {                                                                  \
        ::contig::obs::TraceSink &sink_ =                                 \
            ::contig::obs::TraceSink::global();                           \
        if (sink_.wants(::contig::obs::traceCategoryOf(kind)))            \
            sink_.record((kind)__VA_OPT__(, ) __VA_ARGS__);               \
    } while (0)
#else
#define CONTIG_TRACE(kind, ...) ((void)0)
#endif

#endif // CONTIG_OBS_TRACE_HH
