/**
 * @file
 * Reproduces Table V: total page faults and 99th-percentile fault
 * latency across the suite for THP, CA paging, and eager paging.
 * Expected shape: THP and CA have the same fault count and nearly the
 * same tail latency (CA's placement is cheap); eager collapses the
 * fault count to a handful of giant pre-allocations whose bulk
 * zeroing pushes the 99th latency up by orders of magnitude.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/bench_io.hh"
#include "core/report.hh"

using namespace contig;

namespace
{

struct Totals
{
    std::uint64_t faults = 0;
    double p99Us = 0.0;
};

Totals
runSuite(PolicyKind kind)
{
    NativeSystem sys(kind, 7);
    for (const auto &name : paperWorkloads()) {
        if (name == "bt")
            continue; // keep peak footprint equal across policies
        auto wl = makeWorkload(name, {1.0, 7});
        sys.run(*wl, 1u << 30);
        sys.finish(*wl);
    }
    Totals t;
    t.faults = sys.kernel().faultStats().faults;
    t.p99Us = sys.kernel().faultStats().latencyUs.quantile(0.99);
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("table5_fault_latency", argc, argv);

    auto thp = runSuite(PolicyKind::Thp);
    auto ca = runSuite(PolicyKind::Ca);
    auto eager = runSuite(PolicyKind::Eager);

    Report rep("Table V — total page faults and 99th-%ile latency "
               "(suite aggregate)");
    rep.header({"metric", "THP", "CA paging", "eager paging"});
    rep.row({"total faults", std::to_string(thp.faults),
             std::to_string(ca.faults), std::to_string(eager.faults)});
    rep.row({"99th latency (us)", Report::num(thp.p99Us, 1),
             Report::num(ca.p99Us, 1), Report::num(eager.p99Us, 1)});
    out.add(rep);
    rep.print();

    std::printf("\npaper: THP 515us / CA 526us / eager 80372us; "
                "eager's fault count drops to tens\n");
    out.write();
    return 0;
}
