/**
 * @file
 * Micro-benchmark (google-benchmark): the observability tax. Verifies
 * the "one predictable branch when disabled" claim of the tracing
 * macro by measuring a hot loop
 *
 *  - bare (no instrumentation at all),
 *  - with CONTIG_TRACE at a masked-off category (the shipping
 *    default: every event site costs one branch on a cached mask),
 *  - with the category enabled (clock read + ring-buffer store),
 *
 * plus the cost of a CounterSet increment through the heterogeneous
 * string_view lookup and of one MetricRegistry snapshot.
 *
 * The observatory tax rides the same harness: a detached StateSampler
 * costs the fault path one branch on a null pointer, an attached idle
 * one costs an increment + compare, and the full capture / delta
 * encode prices are only paid at the sampling cadence.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <mutex>
#include <vector>

#include "base/lock_stats.hh"
#include "base/stats.hh"
#include "base/sync.hh"
#include "contig/analysis.hh"
#include "core/experiment.hh"
#include "obs/attribution.hh"
#include "obs/metrics.hh"
#include "obs/observatory.hh"
#include "obs/trace.hh"

using namespace contig;

namespace
{

/** The work the instrumentation rides on: a trivial LCG step. */
inline std::uint64_t
step(std::uint64_t x)
{
    return x * 6364136223846793005ull + 1442695040888963407ull;
}

void
BM_BareLoop(benchmark::State &state)
{
    std::uint64_t x = 1;
    for (auto _ : state) {
        x = step(x);
        benchmark::DoNotOptimize(x);
    }
}

void
BM_TraceDisabled(benchmark::State &state)
{
    obs::TraceSink::global().setCategoryMask(0);
    std::uint64_t x = 1;
    for (auto _ : state) {
        x = step(x);
        CONTIG_TRACE(obs::TraceEventKind::PageFault, x, x, 0);
        benchmark::DoNotOptimize(x);
    }
}

void
BM_TraceEnabled(benchmark::State &state)
{
    obs::TraceSink &sink = obs::TraceSink::global();
    sink.setCapacity(1u << 16);
    sink.setCategoryMask(obs::kCatFault);
    std::uint64_t x = 1;
    for (auto _ : state) {
        x = step(x);
        CONTIG_TRACE(obs::TraceEventKind::PageFault, x, x, 0);
        benchmark::DoNotOptimize(x);
    }
    sink.setCategoryMask(0);
    sink.clear();
}

void
BM_CounterInc(benchmark::State &state)
{
    CounterSet counters;
    for (auto _ : state)
        counters.inc("migrate.pages", 1);
    benchmark::DoNotOptimize(counters.get("migrate.pages"));
}

void
BM_RegistrySnapshot(benchmark::State &state)
{
    obs::MetricRegistry reg;
    for (int i = 0; i < 64; ++i)
        reg.counter("bench.counter_" + std::to_string(i)) = i;
    reg.summary("bench.lat").add(1.0);
    for (auto _ : state) {
        auto snap = reg.snapshot();
        benchmark::DoNotOptimize(snap.size());
    }
}

/**
 * The fault path with no sampler registered: exactly the null-pointer
 * branch FaultEngine::finishFault pays while detached. Compare
 * against BM_BareLoop for the "disabled = one branch" claim.
 */
void
BM_SamplerDetached(benchmark::State &state)
{
    obs::StateSampler *sampler = nullptr;
    benchmark::DoNotOptimize(sampler);
    std::uint64_t x = 1;
    for (auto _ : state) {
        x = step(x);
        if (sampler)
            sampler->onFaultTick();
        benchmark::DoNotOptimize(x);
    }
}

/** Attached but idle: one counter increment + compare per fault. */
void
BM_SamplerIdle(benchmark::State &state)
{
    obs::SamplerConfig cfg;
    cfg.periodFaults = 1ull << 62; // never fires
    cfg.keepSnapshots = false;
    obs::StateSampler sampler(cfg);
    std::uint64_t x = 1;
    for (auto _ : state) {
        x = step(x);
        sampler.onFaultTick();
        benchmark::DoNotOptimize(x);
    }
}

/** One full capture of a populated kernel (paid at the cadence). */
void
BM_SnapshotCapture(benchmark::State &state)
{
    Kernel kernel(kernelConfigFor(PolicyKind::Thp),
                  makePolicy(PolicyKind::Thp));
    Process &proc = kernel.createProcess("bm_capture");
    Vma &vma = kernel.mmapAnon(proc, 64ull << 20);
    for (std::uint64_t off = 0; off < vma.bytes(); off += kPageSize)
        kernel.touch(proc, vma.start() + off, Access::Write);

    obs::SamplerConfig cfg;
    cfg.keepSnapshots = false;
    obs::StateSampler sampler(cfg);
    sampler.addSegProbe(
        "1d", &proc, [&proc] { return extractSegs(proc.pageTable()); },
        true);
    sampler.attachKernel(kernel);
    for (auto _ : state) {
        const obs::Snapshot &snap = sampler.sampleNow();
        benchmark::DoNotOptimize(snap.zones.size());
    }
}

/**
 * The lock-stats tax, uncontended path. Bare: a SpinLock with no
 * site bound — with the accounting compiled in this pays exactly one
 * null-check branch after the exchange, which is the shipping
 * default (`micro_obs_overhead` gates this against BM_SpinLockBare's
 * committed baseline).
 */
void
BM_SpinLockBare(benchmark::State &state)
{
    SpinLock lock;
    std::uint64_t x = 1;
    for (auto _ : state) {
        std::lock_guard<SpinLock> g(lock);
        x = step(x);
        benchmark::DoNotOptimize(x);
    }
}

/** Site bound (--lock-stats on): adds one relaxed striped add. */
void
BM_SpinLockInstrumented(benchmark::State &state)
{
    LockSite &site =
        LockStatsRegistry::global().site("bench.spinlock");
    site.reset();
    SpinLock lock;
    lock.bindStats(&site);
    std::uint64_t x = 1;
    for (auto _ : state) {
        std::lock_guard<SpinLock> g(lock);
        x = step(x);
        benchmark::DoNotOptimize(x);
    }
    benchmark::DoNotOptimize(site.totals().acquisitions);
    site.reset();
}

/**
 * The cost-attribution tax, switch off: exactly the null-pointer
 * branch TranslationSim::runChunk pays per access when --attrib is
 * not given. Compare against BM_BareLoop for the "disabled = one
 * branch" claim (gated by obs_overhead_gate.py).
 */
void
BM_AttribOff(benchmark::State &state)
{
    std::unique_ptr<obs::XlatAttribution> attrib;
    benchmark::DoNotOptimize(attrib);
    std::uint64_t x = 1;
    for (auto _ : state) {
        x = step(x);
        if (attrib)
            attrib->record(obs::XlatOutcome::FullWalk, x, 10, 10);
        benchmark::DoNotOptimize(x);
    }
}

/**
 * Switch on: classify the vpn against a 64-run contiguity index
 * (binary search), bump the (outcome x class) cell, offer the event
 * to the exemplar reservoir. Priced for reference, not gated.
 */
void
BM_AttribOn(benchmark::State &state)
{
    std::vector<Seg> segs;
    for (std::uint64_t i = 0; i < 64; ++i)
        segs.push_back(Seg{i * 1024, i * 1024, 512});
    auto idx = std::make_shared<const obs::ContigClassIndex>(segs);
    obs::XlatAttribution attrib("bench");
    attrib.setIndex(idx);
    std::uint64_t x = 1;
    for (auto _ : state) {
        x = step(x);
        attrib.record(obs::XlatOutcome::FullWalk, x % (64 * 1024),
                      (x & 63) + 1, (x & 63) + 1);
        benchmark::DoNotOptimize(x);
    }
    benchmark::DoNotOptimize(attrib.events());
}

/** Delta-encoding one snapshot against its predecessor. */
void
BM_DeltaEncode(benchmark::State &state)
{
    obs::FlatSnap prev, next;
    for (int i = 0; i < 256; ++i) {
        const std::string key = "zone0.k" + std::to_string(i);
        prev[key] = i;
        next[key] = i + (i % 16 == 0 ? 1 : 0); // 1/16 keys change
    }
    obs::TimelineRecord rec;
    rec.domain = "bm";
    for (auto _ : state) {
        obs::FlatDelta delta = obs::diffFlat(prev, next);
        rec.set = std::move(delta.set);
        rec.del = std::move(delta.del);
        const std::string line = obs::encodeTimelineRecord(rec);
        benchmark::DoNotOptimize(line.size());
    }
}

} // namespace

BENCHMARK(BM_BareLoop);
BENCHMARK(BM_TraceDisabled);
BENCHMARK(BM_TraceEnabled);
BENCHMARK(BM_CounterInc);
BENCHMARK(BM_RegistrySnapshot);
BENCHMARK(BM_SamplerDetached);
BENCHMARK(BM_SamplerIdle);
BENCHMARK(BM_SnapshotCapture);
BENCHMARK(BM_SpinLockBare);
BENCHMARK(BM_SpinLockInstrumented);
BENCHMARK(BM_AttribOff);
BENCHMARK(BM_AttribOn);
BENCHMARK(BM_DeltaEncode);
