# Empty dependencies file for contig.
# This may be replaced when dependencies are built.
