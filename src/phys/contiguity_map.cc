#include "phys/contiguity_map.hh"

#include "base/align.hh"
#include "base/logging.hh"
#include "obs/metrics.hh"

namespace contig
{

ContiguityMap::ContiguityMap(std::uint64_t block_pages)
    : blockPages_(block_pages)
{
    contig_assert(block_pages > 0, "block size must be positive");
}

void
ContiguityMap::onBlockFree(Pfn block_base)
{
    ++stats_.inserts;
    trackedPages_ += blockPages_;

    Pfn start = block_base;
    std::uint64_t pages = blockPages_;

    // Merge with a preceding cluster that ends exactly at block_base.
    auto next = clusters_.upper_bound(block_base);
    if (next != clusters_.begin()) {
        auto prev = std::prev(next);
        contig_assert(prev->first + prev->second <= block_base,
                      "block freed inside an existing cluster");
        if (prev->first + prev->second == block_base) {
            start = prev->first;
            pages += prev->second;
            ++stats_.merges;
            next = clusters_.erase(prev);
        }
    }
    // Merge with a following cluster that starts exactly at the end.
    if (next != clusters_.end() &&
        next->first == block_base + blockPages_) {
        pages += next->second;
        ++stats_.merges;
        if (roverValid_ && rover_ == next->first)
            rover_ = start;
        clusters_.erase(next);
    }
    clusters_[start] = pages;
}

void
ContiguityMap::onBlockAllocated(Pfn block_base)
{
    ++stats_.removes;
    auto it = clusters_.upper_bound(block_base);
    contig_assert(it != clusters_.begin(),
                  "allocated block not tracked by contiguity map");
    --it;
    contig_assert(it->first <= block_base &&
                      block_base + blockPages_ <= it->first + it->second,
                  "allocated block not inside its cluster");

    const Pfn start = it->first;
    const std::uint64_t pages = it->second;
    const bool rover_here = roverValid_ && rover_ == start;
    clusters_.erase(it);
    trackedPages_ -= blockPages_;

    const std::uint64_t left = block_base - start;
    const std::uint64_t right = (start + pages) - (block_base + blockPages_);
    if (left > 0)
        clusters_[start] = left;
    if (right > 0)
        clusters_[block_base + blockPages_] = right;
    if (left > 0 && right > 0)
        ++stats_.splits;

    if (rover_here)
        rover_ = right > 0 ? block_base + blockPages_
                           : (left > 0 ? start : rover_);
    if (clusters_.empty())
        roverValid_ = false;
}

ContiguityMap::Map::const_iterator
ContiguityMap::roverIter() const
{
    if (clusters_.empty())
        return clusters_.end();
    if (!roverValid_)
        return clusters_.begin();
    // The rover may point into the middle of a cluster (just past the
    // previous placement's reservation): find the cluster containing
    // it, else the next one.
    auto it = clusters_.upper_bound(rover_);
    if (it != clusters_.begin()) {
        auto prev = std::prev(it);
        if (rover_ < prev->first + prev->second)
            return prev;
    }
    if (it == clusters_.end())
        it = clusters_.begin();
    return it;
}

std::optional<Cluster>
ContiguityMap::placeNextFit(std::uint64_t req_pages)
{
    ++stats_.placements;
    if (clusters_.empty())
        return std::nullopt;

    // True next-fit: placements resume from where the previous one
    // left off — *past its reservation* — so consecutive placement
    // requests (other VMAs, page-cache readahead, other processes)
    // are steered away from the region a previous placement is still
    // filling on demand (the racing deferral of §III-C).
    auto advance_rover = [&](Pfn region_start, std::uint64_t used) {
        rover_ = region_start + alignUp(used, blockPages_);
        roverValid_ = true;
    };

    auto start_it = roverIter();
    auto it = start_it;
    bool first = true;
    Cluster best{0, 0};
    do {
        ++stats_.placementScanSteps;
        // For the cluster containing the rover, only the part at and
        // after the rover is considered (we "left off" there).
        Pfn usable_start = it->first;
        std::uint64_t usable_pages = it->second;
        if (first && roverValid_ && rover_ > it->first &&
            rover_ < it->first + it->second) {
            usable_start = rover_;
            usable_pages = it->first + it->second - rover_;
        }
        first = false;

        if (usable_pages >= req_pages) {
            advance_rover(usable_start, req_pages);
            return Cluster{usable_start, usable_pages};
        }
        if (usable_pages > best.pages)
            best = Cluster{usable_start, usable_pages};
        ++it;
        if (it == clusters_.end())
            it = clusters_.begin();
    } while (it != start_it);

    // Nothing fits: next-fit settles for the largest region found.
    if (best.pages == 0)
        return std::nullopt;
    advance_rover(best.startPfn, best.pages);
    return best;
}

std::optional<Cluster>
ContiguityMap::placeBestFit(std::uint64_t req_pages) const
{
    if (clusters_.empty())
        return std::nullopt;
    const Map::value_type *best_fit = nullptr;
    const Map::value_type *largest = nullptr;
    for (const auto &kv : clusters_) {
        if (!largest || kv.second > largest->second)
            largest = &kv;
        if (kv.second >= req_pages &&
            (!best_fit || kv.second < best_fit->second)) {
            best_fit = &kv;
        }
    }
    const Map::value_type *pick = best_fit ? best_fit : largest;
    return Cluster{pick->first, pick->second};
}

std::optional<Cluster>
ContiguityMap::largest() const
{
    if (clusters_.empty())
        return std::nullopt;
    const Map::value_type *largest = nullptr;
    for (const auto &kv : clusters_)
        if (!largest || kv.second > largest->second)
            largest = &kv;
    return Cluster{largest->first, largest->second};
}

std::vector<Cluster>
ContiguityMap::snapshot() const
{
    std::vector<Cluster> out;
    out.reserve(clusters_.size());
    for (const auto &kv : clusters_)
        out.push_back(Cluster{kv.first, kv.second});
    return out;
}

Log2Histogram
ContiguityMap::clusterSizeHistogram() const
{
    Log2Histogram hist;
    for (const auto &[start, len] : clusters_)
        hist.add(len, len);
    return hist;
}

bool
ContiguityMap::checkInvariants() const
{
    std::uint64_t pages = 0;
    Pfn prev_end = 0;
    bool first = true;
    for (const auto &[start, len] : clusters_) {
        if (len == 0 || len % blockPages_ != 0 ||
            start % blockPages_ != 0) {
            return false;
        }
        // Clusters must be maximal: no two adjacent clusters may touch.
        if (!first && start <= prev_end)
            return false;
        prev_end = start + len;
        pages += len;
        first = false;
    }
    return pages == trackedPages_;
}

void
ContiguityMap::collectMetrics(obs::MetricSink &sink) const
{
    sink.counter("inserts", stats_.inserts);
    sink.counter("removes", stats_.removes);
    sink.counter("merges", stats_.merges);
    sink.counter("splits", stats_.splits);
    sink.counter("placements", stats_.placements);
    sink.counter("placement_scan_steps", stats_.placementScanSteps);
    sink.gauge("clusters", static_cast<double>(clusters_.size()));
    sink.gauge("free_pages_tracked", static_cast<double>(trackedPages_));
    Log2Histogram sizes;
    for (const auto &[start, len] : clusters_)
        sizes.add(len);
    sink.histogram("cluster_pages", sizes);
}

} // namespace contig
