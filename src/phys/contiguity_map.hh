/**
 * @file
 * The contiguity_map of CA paging (paper §III-B, Fig. 3): an indexing
 * structure on top of the buddy allocator's top-order free list that
 * records *unaligned* free contiguity at scales larger than the buddy
 * heap. Each entry (cluster) is a maximal run of physically adjacent
 * free top-order blocks. The map also hosts the next-fit rover used by
 * CA paging's placement policy, and a best-fit query used by the
 * offline "ideal paging" baseline.
 *
 * NUMA sharding: the map can be striped into N address-contiguous
 * shards (one per worker-lane partition), each with its own cluster
 * map, rover and spinlock. Placement scans then lock one stripe at a
 * time instead of serializing on the zone lock, which is what showed
 * up as lock.zone*.buddy contention under threaded replay. Clusters
 * are maximal *within a stripe* — a free run crossing a stripe
 * boundary is recorded as two clusters. With 1 stripe (the default)
 * behaviour, statistics and placement sequences are identical to the
 * unsharded map, which keeps the fig13/fig14 goldens byte-stable.
 */

#ifndef CONTIG_PHYS_CONTIGUITY_MAP_HH
#define CONTIG_PHYS_CONTIGUITY_MAP_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "base/sync.hh"
#include "base/types.hh"

namespace contig
{

namespace obs { class MetricSink; }

/** A maximal run of free top-order blocks: [startPfn, startPfn+pages). */
struct Cluster
{
    Pfn startPfn = 0;
    std::uint64_t pages = 0;
};

/** Statistics exported by a ContiguityMap instance. */
struct ContiguityMapStats
{
    std::uint64_t inserts = 0;
    std::uint64_t removes = 0;
    std::uint64_t merges = 0;
    std::uint64_t splits = 0;
    std::uint64_t placements = 0;
    std::uint64_t placementScanSteps = 0;
};

/**
 * Sorted-by-physical-address map of free clusters. The kernel keeps
 * one instance per zone (per NUMA node), mirroring the paper's
 * per-`struct zone` instance; within a zone the map may additionally
 * be striped (see the file comment).
 */
class ContiguityMap
{
  public:
    /**
     * @param block_pages Pages per top-order block (2^maxOrder).
     * @param stripes Shard count; <=1 keeps the legacy single map.
     * @param base_pfn First PFN of the span (stripes > 1 only).
     * @param span_pages PFN span covered (stripes > 1 only).
     */
    explicit ContiguityMap(std::uint64_t block_pages, unsigned stripes = 1,
                           Pfn base_pfn = 0, std::uint64_t span_pages = 0);

    /** A top-order block at block_base became free. */
    void onBlockFree(Pfn block_base);

    /** A top-order block at block_base left the free list. */
    void onBlockAllocated(Pfn block_base);

    /**
     * Next-fit placement (paper §III-C): starting from the rover,
     * return the first cluster with at least req_pages free pages,
     * wrapping around once. If no cluster is large enough, return the
     * largest cluster seen. Advances the rover past the chosen
     * cluster so consecutive placements defer racing on one block.
     * Returns nullopt only if the map is empty. Striped maps take one
     * stripe lock at a time — callers need no external lock.
     */
    std::optional<Cluster> placeNextFit(std::uint64_t req_pages);

    /**
     * Best-fit placement: the smallest cluster that fits, or the
     * largest overall. Does not move the rover (used by IdealPolicy's
     * offline assignment).
     */
    std::optional<Cluster> placeBestFit(std::uint64_t req_pages) const;

    /** Largest cluster currently tracked. */
    std::optional<Cluster> largest() const;

    std::uint64_t clusterCount() const;
    std::uint64_t freePagesTracked() const;

    /** Number of shards (1 = legacy unsharded map). */
    unsigned stripes() const { return static_cast<unsigned>(stripes_.size()); }
    bool striped() const { return stripes_.size() > 1; }

    /** Snapshot of all clusters in address order. */
    std::vector<Cluster> snapshot() const;

    /**
     * Cluster-size distribution, weighted by pages (bucket i holds
     * the pages living in clusters of [2^i, 2^(i+1)) pages) — the
     * cluster CDF the observatory samples per tick.
     */
    Log2Histogram clusterSizeHistogram() const;

    /** Aggregate statistics over all stripes (by value). */
    ContiguityMapStats stats() const;

    /**
     * Bind per-stripe lock-contention sites "<prefix><i>" so
     * --lock-stats attributes stripe-lock contention separately from
     * the zone lock.
     */
    void bindLockStats(const std::string &prefix);

    /** Report counters + cluster gauges/size histogram into a sink. */
    void collectMetrics(obs::MetricSink &sink) const;

    /** Consistency check for the property tests. */
    bool checkInvariants() const;

  private:
    using Map = std::map<Pfn, std::uint64_t>; // start -> pages

    /**
     * One shard: the cluster map for one address-contiguous slice of
     * the span, its next-fit rover and the lock placement scans and
     * buddy hooks take (a leaf lock; the zone lock may be held).
     */
    struct Stripe
    {
        Map clusters;
        std::uint64_t trackedPages = 0;
        Pfn rover = 0;
        bool roverValid = false;
        ContiguityMapStats stats;
        mutable SpinLock lock;
    };

    unsigned stripeOf(Pfn pfn) const;
    Map::const_iterator roverIter(const Stripe &st) const;
    void advanceRover(Stripe &st, unsigned si, Pfn region_start,
                      std::uint64_t used);

    std::uint64_t blockPages_;
    Pfn basePfn_;
    /** PFNs per stripe (top-block aligned); 0 when unsharded. */
    std::uint64_t stripeSpan_;
    std::vector<Stripe> stripes_;
    /** Stripe holding the next-fit rover (advisory; relaxed). */
    std::atomic<unsigned> roverStripe_{0};
};

} // namespace contig

#endif // CONTIG_PHYS_CONTIGUITY_MAP_HH
