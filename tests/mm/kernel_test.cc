#include <gtest/gtest.h>

#include "mm/kernel.hh"
#include "mm/migrate.hh"

using namespace contig;

namespace
{

KernelConfig
smallConfig(bool thp = true)
{
    KernelConfig cfg;
    cfg.phys.bytesPerNode = 128ull << 20;
    cfg.phys.numNodes = 2;
    cfg.thpEnabled = thp;
    return cfg;
}

std::unique_ptr<Kernel>
makeKernel(bool thp = true)
{
    return std::make_unique<Kernel>(smallConfig(thp),
                                    std::make_unique<DefaultThpPolicy>());
}

} // namespace

TEST(Kernel, TouchFaultsOnce)
{
    auto k = makeKernel(false);
    Process &p = k->createProcess("t");
    Vma &vma = p.mmap(1 << 20);
    p.touch(vma.start());
    EXPECT_EQ(k->faultStats().faults, 1u);
    p.touch(vma.start()); // already mapped: no new fault
    EXPECT_EQ(k->faultStats().faults, 1u);
    EXPECT_EQ(vma.touchedPages, 1u);
    EXPECT_EQ(vma.allocatedPages, 1u);
}

TEST(Kernel, ThpFaultMapsHuge)
{
    auto k = makeKernel(true);
    Process &p = k->createProcess("t");
    Vma &vma = p.mmap(4 * kHugeSize);
    p.touch(vma.start() + 123);
    EXPECT_EQ(k->faultStats().hugeFaults, 1u);
    auto m = p.pageTable().lookup(vma.start().pageNumber());
    ASSERT_TRUE(m);
    EXPECT_EQ(m->order, kHugeOrder);
    EXPECT_EQ(vma.allocatedPages, 512u);
    EXPECT_EQ(vma.touchedPages, 1u); // bloat: 511 untouched pages
}

TEST(Kernel, SmallVmaUses4k)
{
    auto k = makeKernel(true);
    Process &p = k->createProcess("t");
    Vma &vma = p.mmap(64 << 10); // < 2 MiB: no huge fault possible
    p.touchRange(vma.start(), 64 << 10);
    EXPECT_EQ(k->faultStats().hugeFaults, 0u);
    EXPECT_EQ(k->faultStats().baseFaults, 16u);
}

TEST(Kernel, ThpDisabledUses4k)
{
    auto k = makeKernel(false);
    Process &p = k->createProcess("t");
    Vma &vma = p.mmap(4 * kHugeSize);
    p.touchRange(vma.start(), kHugeSize);
    EXPECT_EQ(k->faultStats().hugeFaults, 0u);
    EXPECT_EQ(k->faultStats().baseFaults, 512u);
}

TEST(Kernel, MunmapFreesMemory)
{
    auto k = makeKernel(true);
    const std::uint64_t before = k->physMem().freePages();
    Process &p = k->createProcess("t");
    Vma &vma = p.mmap(8 * kHugeSize);
    p.touchRange(vma.start(), 8 * kHugeSize);
    EXPECT_LT(k->physMem().freePages(), before);
    p.munmap(vma);
    // Page-table node frames stay in the kernel's metadata pool; all
    // data frames must be back.
    k->exitProcess(p);
    EXPECT_EQ(k->physMem().freePages(), before - k->kernelPoolPages());
}

TEST(Kernel, ForkSharesCow)
{
    auto k = makeKernel(false);
    Process &p = k->createProcess("parent");
    Vma &vma = p.mmap(1 << 20);
    p.touchRange(vma.start(), 1 << 20);
    const std::uint64_t faults_before = k->faultStats().faults;

    Process &c = p.fork("child");
    // Child sees the same frames, read-only COW.
    auto pm = p.pageTable().lookup(vma.start().pageNumber());
    auto cm = c.pageTable().lookup(vma.start().pageNumber());
    ASSERT_TRUE(pm && cm);
    EXPECT_EQ(pm->pfn, cm->pfn);
    EXPECT_TRUE(cm->cow);

    // Child reads: no fault. Child writes: COW copy.
    c.touch(vma.start(), Access::Read);
    EXPECT_EQ(k->faultStats().cowFaults, 0u);
    c.touch(vma.start(), Access::Write);
    EXPECT_EQ(k->faultStats().cowFaults, 1u);
    auto cm2 = c.pageTable().lookup(vma.start().pageNumber());
    EXPECT_NE(cm2->pfn, pm->pfn);
    EXPECT_FALSE(cm2->cow);
    EXPECT_GT(k->faultStats().faults, faults_before);

    k->exitProcess(c);
    k->exitProcess(p);
}

TEST(Kernel, FileMappingSharesPageCache)
{
    auto k = makeKernel(false);
    File &f = k->createFile(256);
    Process &a = k->createProcess("a");
    Process &b = k->createProcess("b");
    Vma &va = a.mmapFile(f.id(), 256 * kPageSize);
    Vma &vb = b.mmapFile(f.id(), 256 * kPageSize);

    a.touch(va.start(), Access::Read);
    EXPECT_EQ(k->faultStats().fileFaults, 1u);
    // Readahead cached a window.
    EXPECT_EQ(f.cachedPages(), kReadaheadPages);

    b.touch(vb.start(), Access::Read);
    auto ma = a.pageTable().lookup(va.start().pageNumber());
    auto mb = b.pageTable().lookup(vb.start().pageNumber());
    ASSERT_TRUE(ma && mb);
    EXPECT_EQ(ma->pfn, mb->pfn); // same page-cache frame

    // Page-cache pages survive process exit...
    k->exitProcess(a);
    k->exitProcess(b);
    EXPECT_EQ(f.cachedPages(), kReadaheadPages);
    // ...until caches are dropped.
    k->dropCaches();
    EXPECT_EQ(f.cachedPages(), 0u);
}

TEST(Kernel, FileOffsetMapping)
{
    auto k = makeKernel(false);
    File &f = k->createFile(256);
    Process &p = k->createProcess("p");
    Vma &v = p.mmapFile(f.id(), 16 * kPageSize, 100);
    p.touch(v.start() + 3 * kPageSize, Access::Read);
    EXPECT_TRUE(f.isCached(103));
    EXPECT_FALSE(f.isCached(3));
    k->exitProcess(p);
    k->dropCaches();
}

TEST(Kernel, HugeFallbackTo4k)
{
    // Exhaust all but a few 4 KiB pages so a huge allocation fails.
    auto k = makeKernel(true);
    Process &p = k->createProcess("t");
    Vma &vma = p.mmap(4 * kHugeSize);

    PhysicalMemory &pm = k->physMem();
    // Take every huge-order block; only sub-huge remnants (from the
    // kernel pool's split) stay free.
    while (pm.alloc(kHugeOrder))
        ;
    std::uint64_t free_before = pm.freePages();
    ASSERT_LT(free_before, pagesInOrder(kHugeOrder));
    ASSERT_GT(free_before, 0u);
    p.touch(vma.start());
    EXPECT_EQ(k->policy().allocFailCounts().noHugeBlock, 1u);
    EXPECT_EQ(k->policy().allocFailCounts().oom, 0u);
    EXPECT_EQ(k->faultStats().baseFaults, 1u);
    auto m = p.pageTable().lookup(vma.start().pageNumber());
    ASSERT_TRUE(m);
    EXPECT_EQ(m->order, 0u);
}

TEST(Kernel, FaultLatencyRecorded)
{
    auto k = makeKernel(true);
    Process &p = k->createProcess("t");
    Vma &vma = p.mmap(kHugeSize);
    p.touch(vma.start());
    EXPECT_EQ(k->faultStats().latencyUs.count(), 1u);
    // A huge fault zeroes 512 pages: latency must exceed the base.
    double lat = k->faultStats().latencyUs.quantile(1.0);
    double base_us = k->config().faultBaseCycles / k->config().cyclesPerUs;
    EXPECT_GT(lat, base_us);
}

TEST(Kernel, OnFaultObserverFires)
{
    auto k = makeKernel(true);
    int events = 0;
    Vpn last_vpn = 0;
    k->onFault = [&](const FaultEvent &ev) {
        ++events;
        last_vpn = ev.vpn;
    };
    Process &p = k->createProcess("t");
    Vma &vma = p.mmap(kHugeSize);
    p.touch(vma.start() + 5 * kPageSize);
    EXPECT_EQ(events, 1);
    EXPECT_EQ(last_vpn, vma.start().pageNumber()); // huge-aligned base
}

TEST(Kernel, BackingHookFires)
{
    auto k = makeKernel(true);
    std::uint64_t backed_pages = 0;
    k->backingHook = [&](Pfn, unsigned order) {
        backed_pages += pagesInOrder(order);
    };
    Process &p = k->createProcess("t");
    Vma &vma = p.mmap(kHugeSize);
    p.touch(vma.start());
    // The huge data block plus any page-table node frames.
    EXPECT_GE(backed_pages, 512u);
}

TEST(Migrate, MovesLeafToChosenFrame)
{
    auto k = makeKernel(false);
    Process &p = k->createProcess("t");
    Vma &vma = p.mmap(1 << 20);
    p.touch(vma.start());
    auto m = p.pageTable().lookup(vma.start().pageNumber());
    ASSERT_TRUE(m);

    // Find a free aligned destination far away.
    Pfn dest = k->physMem().totalFrames() / 2 + 4096;
    ASSERT_TRUE(k->physMem().isFreePage(dest));
    EXPECT_EQ(migrateLeaf(*k, p, vma.start().pageNumber(), dest),
              MigrateResult::Done);
    auto m2 = p.pageTable().lookup(vma.start().pageNumber());
    EXPECT_EQ(m2->pfn, dest);
    EXPECT_TRUE(k->physMem().isFreePage(m->pfn)); // old frame freed
    EXPECT_EQ(k->counters().get("migrate.shootdowns"), 1u);
}

TEST(Migrate, RefusesSharedFrames)
{
    auto k = makeKernel(false);
    Process &p = k->createProcess("parent");
    Vma &vma = p.mmap(1 << 20);
    p.touch(vma.start());
    p.fork("child");
    Pfn dest = k->physMem().totalFrames() / 2;
    EXPECT_EQ(migrateLeaf(*k, p, vma.start().pageNumber(), dest),
              MigrateResult::Shared);
}

TEST(Migrate, PromoteHuge)
{
    auto k = makeKernel(false); // 4 KiB faults only
    Process &p = k->createProcess("t");
    Vma &vma = p.mmap(kHugeSize);
    p.touchRange(vma.start(), kHugeSize);
    EXPECT_EQ(k->faultStats().baseFaults, 512u);

    Vpn base = vma.start().pageNumber();
    EXPECT_TRUE(promoteHuge(*k, p, base));
    auto m = p.pageTable().lookup(base);
    ASSERT_TRUE(m);
    EXPECT_EQ(m->order, kHugeOrder);
    EXPECT_EQ(k->counters().get("promote.pages"), 512u);

    // Second promotion attempt: already huge.
    EXPECT_FALSE(promoteHuge(*k, p, base));
}
