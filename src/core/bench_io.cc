#include "core/bench_io.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "base/json.hh"
#include "base/lock_stats.hh"
#include "base/logging.hh"
#include "base/simd.hh"
#include "core/config.hh"
#include "mm/kernel.hh"
#include "obs/attribution.hh"
#include "obs/lock_metrics.hh"
#include "obs/metrics.hh"
#include "obs/observatory.hh"
#include "obs/trace.hh"

namespace contig
{

namespace
{

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

} // namespace

BenchOutput::BenchOutput(std::string bench, int argc, char **argv)
    : bench_(std::move(bench))
{
    parseArgs(argc, argv);

    if (jsonPath_.empty())
        if (const char *env = std::getenv("CONTIG_JSON_OUT"))
            jsonPath_ = env;
    if (tracePath_.empty())
        if (const char *env = std::getenv("CONTIG_TRACE_OUT"))
            tracePath_ = env;
    if (timelinePath_.empty())
        if (const char *env = std::getenv("CONTIG_TIMELINE_OUT"))
            timelinePath_ = env;
    if (threads_ == 1)
        if (const char *env = std::getenv("CONTIG_THREADS"))
            threads_ = static_cast<unsigned>(
                std::max(1l, std::strtol(env, nullptr, 10)));
    if (xlatThreads_ == 1)
        if (const char *env = std::getenv("CONTIG_XLAT_THREADS"))
            xlatThreads_ = static_cast<unsigned>(
                std::max(1l, std::strtol(env, nullptr, 10)));
    if (xlatChunk_ == 0)
        if (const char *env = std::getenv("CONTIG_XLAT_CHUNK"))
            xlatChunk_ = static_cast<std::uint64_t>(
                std::max(0l, std::strtol(env, nullptr, 10)));
    if (traceIn_.empty())
        if (const char *env = std::getenv("CONTIG_CTRACE_IN"))
            traceIn_ = env;
    if (traceOut_.empty())
        if (const char *env = std::getenv("CONTIG_CTRACE_OUT"))
            traceOut_ = env;
    if (ckptIn_.empty())
        if (const char *env = std::getenv("CONTIG_CKPT_IN"))
            ckptIn_ = env;
    if (ckptOut_.empty())
        if (const char *env = std::getenv("CONTIG_CKPT_OUT"))
            ckptOut_ = env;
    if (ckptAtChunk_ == 0)
        if (const char *env = std::getenv("CONTIG_CKPT_AT"))
            ckptAtChunk_ = static_cast<std::uint64_t>(
                std::max(0l, std::strtol(env, nullptr, 10)));
    if (numaShards_ == 0)
        if (const char *env = std::getenv("CONTIG_NUMA_SHARDS"))
            numaShards_ = static_cast<unsigned>(
                std::max(0l, std::strtol(env, nullptr, 10)));
    if (!lockStats_)
        if (const char *env = std::getenv("CONTIG_LOCK_STATS"))
            lockStats_ = env[0] != '\0' && std::strcmp(env, "0") != 0;
    if (!attrib_)
        if (const char *env = std::getenv("CONTIG_ATTRIB"))
            attrib_ = env[0] != '\0' && std::strcmp(env, "0") != 0;

    if (!traceIn_.empty() && !traceOut_.empty())
        fatal("%s: --trace-in and --trace-out are mutually exclusive",
              bench_.c_str());
    if (!ckptIn_.empty() && traceIn_.empty())
        fatal("%s: --ckpt-in requires --trace-in (a checkpoint resumes"
              " a trace replay)",
              bench_.c_str());
    if (!ckptOut_.empty() && traceIn_.empty())
        fatal("%s: --ckpt-out requires --trace-in (checkpoints are"
              " taken at trace chunk boundaries)",
              bench_.c_str());
    if (!ckptOut_.empty() && ckptAtChunk_ == 0)
        fatal("%s: --ckpt-out requires --ckpt-at CHUNK",
              bench_.c_str());
    if (ckptAtChunk_ != 0 && ckptOut_.empty())
        fatal("%s: --ckpt-at requires --ckpt-out PREFIX",
              bench_.c_str());

    if (numaShards_ > 1) {
        // Same before-any-kernel contract as lock stats: every kernel
        // built after this (host, guest, bench scratch instances)
        // shards its physical metadata without touching each
        // construction site.
        KernelConfig::setDefaultNumaShards(numaShards_);
    }

    if (noSimd_) {
        // Before any simulator exists, like the switches below; the
        // CONTIG_SIMD=0 environment form is honoured by simd::
        // enabled() itself.
        simd::setForceScalar(true);
    }

    if (lockStats_) {
        // Flip the switch before any kernel exists so every
        // KernelConfig::normalized() in this run binds its lock sites.
        LockStatsRegistry::setEnabled(true);
        lockSource_ =
            obs::makeLockMetricsSource(obs::MetricRegistry::global());
    }

    if (attrib_) {
        // Same before-any-kernel contract as lock stats: every
        // TranslationSim / FaultEngine built after this carries an
        // attribution table.
        obs::AttribRegistry::setEnabled(true);
        obs::RunInfo::global().note("attrib.enabled", true);
    }

    if (!timelinePath_.empty() &&
        !obs::TimelineSink::global().open(timelinePath_))
        fatal("cannot open --timeline output '%s'",
              timelinePath_.c_str());

    if (!tracePath_.empty()) {
        obs::TraceSink &sink = obs::TraceSink::global();
        if (sink.categoryMask() == 0)
            sink.setCategoryMask(obs::kCatAll);
    }
    if (const char *env = std::getenv("CONTIG_TRACE_CATEGORIES"))
        obs::TraceSink::global().setCategoryMask(
            obs::parseTraceCategories(env));
}

BenchOutput::~BenchOutput()
{
    if (!written_)
        write();
}

void
BenchOutput::parseArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        const bool has_next = i + 1 < argc;
        if (arg == "--json" && has_next) {
            jsonPath_ = argv[++i];
        } else if (arg == "--trace" && has_next) {
            tracePath_ = argv[++i];
        } else if (arg == "--timeline" && has_next) {
            timelinePath_ = argv[++i];
        } else if (arg == "--threads" && has_next) {
            const long n = std::strtol(argv[++i], nullptr, 10);
            if (n < 1)
                fatal("%s: --threads wants a positive count, got '%s'",
                      bench_.c_str(), argv[i]);
            threads_ = static_cast<unsigned>(n);
        } else if (arg == "--xlat-threads" && has_next) {
            const long n = std::strtol(argv[++i], nullptr, 10);
            if (n < 1)
                fatal("%s: --xlat-threads wants a positive count,"
                      " got '%s'",
                      bench_.c_str(), argv[i]);
            xlatThreads_ = static_cast<unsigned>(n);
        } else if (arg == "--xlat-chunk" && has_next) {
            const long n = std::strtol(argv[++i], nullptr, 10);
            if (n < 1)
                fatal("%s: --xlat-chunk wants a positive access count,"
                      " got '%s'",
                      bench_.c_str(), argv[i]);
            xlatChunk_ = static_cast<std::uint64_t>(n);
        } else if (arg == "--no-simd") {
            noSimd_ = true;
        } else if (arg == "--numa-shards" && has_next) {
            const long n = std::strtol(argv[++i], nullptr, 10);
            if (n < 1)
                fatal("%s: --numa-shards wants a positive count,"
                      " got '%s'",
                      bench_.c_str(), argv[i]);
            numaShards_ = static_cast<unsigned>(n);
        } else if (arg == "--trace-in" && has_next) {
            traceIn_ = argv[++i];
        } else if (arg == "--trace-out" && has_next) {
            traceOut_ = argv[++i];
        } else if (arg == "--ckpt-in" && has_next) {
            ckptIn_ = argv[++i];
        } else if (arg == "--ckpt-out" && has_next) {
            ckptOut_ = argv[++i];
        } else if (arg == "--ckpt-at" && has_next) {
            const long n = std::strtol(argv[++i], nullptr, 10);
            if (n < 1)
                fatal("%s: --ckpt-at wants a positive chunk index,"
                      " got '%s'",
                      bench_.c_str(), argv[i]);
            ckptAtChunk_ = static_cast<std::uint64_t>(n);
        } else if (arg == "--lock-stats") {
            lockStats_ = true;
        } else if (arg == "--attrib") {
            attrib_ = true;
        } else if (arg == "--trace-categories" && has_next) {
            const char *list = argv[++i];
            const std::uint32_t mask = obs::parseTraceCategories(list);
            if (mask == 0)
                fatal("%s: unknown trace category in '%s'\n"
                      "valid: all, fault, alloc, migrate, walk, spot,"
                      " daemon, phase, replay (or a hex mask)",
                      bench_.c_str(), list);
            obs::TraceSink::global().setCategoryMask(mask);
        } else {
            fatal("%s: unknown argument '%s'\n"
                  "usage: %s [--json FILE] [--trace FILE]"
                  " [--timeline FILE] [--trace-categories LIST]"
                  " [--threads N] [--xlat-threads N] [--xlat-chunk N]"
                  " [--no-simd] [--numa-shards N]"
                  " [--trace-in PREFIX] [--trace-out PREFIX]"
                  " [--ckpt-in PREFIX] [--ckpt-out PREFIX]"
                  " [--ckpt-at CHUNK] [--lock-stats] [--attrib]",
                  bench_.c_str(), argv[i], bench_.c_str());
        }
    }
}

void
BenchOutput::note(std::string_view key, std::string_view value)
{
    notes_.push_back({std::string(key), std::string(value), 0.0, false});
}

void
BenchOutput::note(std::string_view key, double value)
{
    notes_.push_back({std::string(key), {}, value, true});
}

void
BenchOutput::note(std::string_view key, std::uint64_t value)
{
    note(key, static_cast<double>(value));
}

void
BenchOutput::add(const Report &rep)
{
    reports_.push_back(rep);
}

void
BenchOutput::writeScaling(JsonWriter &w) const
{
    const obs::SampleMap snap =
        obs::MetricRegistry::global().snapshot();
    const auto summaryOf =
        [&snap](const std::string &name) -> const Summary * {
        const auto it = snap.find(name);
        if (it == snap.end() ||
            it->second.type != obs::MetricType::Summary)
            return nullptr;
        return &it->second.summary;
    };
    const auto counterOf = [&snap](const std::string &name,
                                   std::uint64_t &out) {
        const auto it = snap.find(name);
        if (it == snap.end())
            return false;
        out = it->second.counter;
        return true;
    };

    // Per-worker fault-driver busy times (ParallelDriver::run()).
    std::vector<double> busy;
    for (unsigned i = 0;; ++i) {
        const Summary *s = summaryOf(
            "parallel.worker" + std::to_string(i) + ".busy_us");
        if (!s)
            break;
        busy.push_back(s->sum());
    }
    const Summary *wall = summaryOf("parallel.run.wall_us");

    // Per-shard replay load (ReplayEngine).
    struct Shard
    {
        std::uint64_t accesses = 0;
        std::uint64_t busy = 0;
        std::uint64_t stall = 0;
        std::uint64_t wait = 0;
    };
    std::vector<Shard> shards;
    for (unsigned i = 0;; ++i) {
        const std::string p = "xlat.shard" + std::to_string(i) + ".";
        Shard sh;
        if (!counterOf(p + "accesses", sh.accesses))
            break;
        counterOf(p + "busy_us", sh.busy);
        counterOf(p + "stall_us", sh.stall);
        counterOf(p + "wait_us", sh.wait);
        shards.push_back(sh);
    }
    const Summary *skew = summaryOf("xlat.barrier.skew_us");

    // Trace-replay frontend (TraceReplaySource's producer thread).
    struct Frontend
    {
        std::uint64_t chunks = 0;
        std::uint64_t accesses = 0;
        std::uint64_t bytes = 0;
        std::uint64_t decodeUs = 0;
        std::uint64_t stallUs = 0;
        std::uint64_t waitUs = 0;
    };
    Frontend fe;
    const bool have_frontend =
        counterOf("trace.frontend.chunks_decoded", fe.chunks);
    if (have_frontend) {
        counterOf("trace.frontend.accesses_decoded", fe.accesses);
        counterOf("trace.frontend.bytes_decoded", fe.bytes);
        counterOf("trace.frontend.decode_us", fe.decodeUs);
        counterOf("trace.frontend.stall_us", fe.stallUs);
        counterOf("trace.frontend.wait_us", fe.waitUs);
    }

    std::vector<const LockSite *> sites;
    if (lockStats_)
        sites = LockStatsRegistry::global().sites();

    if ((busy.empty() || !wall) && shards.empty() && sites.empty() &&
        !have_frontend)
        return;

    w.key("scaling");
    w.beginObject();

    if (!busy.empty() && wall) {
        double total = 0.0;
        for (double b : busy)
            total += b;
        const double wall_us = wall->sum();
        const double speedup = wall_us > 0.0 ? total / wall_us : 0.0;
        const unsigned n = static_cast<unsigned>(busy.size());
        // Karp-Flatt experimentally determined serial fraction; a
        // single worker is serial by definition.
        double serial = 1.0;
        if (n > 1 && speedup > 0.0)
            serial = std::clamp(
                (1.0 / speedup - 1.0 / n) / (1.0 - 1.0 / n), 0.0, 1.0);
        w.key("parallel");
        w.beginObject();
        w.field("workers", n);
        w.field("wall_us", wall_us);
        w.field("busy_us_total", total);
        w.key("worker_busy_us");
        w.beginArray();
        for (double b : busy)
            w.value(b);
        w.endArray();
        w.field("achieved_speedup", speedup);
        w.field("serial_fraction", serial);
        w.endObject();
    }

    if (!shards.empty()) {
        std::uint64_t busy_max = 0, busy_total = 0;
        for (const Shard &sh : shards) {
            busy_max = std::max(busy_max, sh.busy);
            busy_total += sh.busy;
        }
        const double busy_mean =
            static_cast<double>(busy_total) / shards.size();
        w.key("xlat");
        w.beginObject();
        w.field("shards", static_cast<std::uint64_t>(shards.size()));
        w.key("shard_accesses");
        w.beginArray();
        for (const Shard &sh : shards)
            w.value(sh.accesses);
        w.endArray();
        w.key("shard_busy_us");
        w.beginArray();
        for (const Shard &sh : shards)
            w.value(sh.busy);
        w.endArray();
        w.key("shard_stall_us");
        w.beginArray();
        for (const Shard &sh : shards)
            w.value(sh.stall);
        w.endArray();
        w.key("shard_wait_us");
        w.beginArray();
        for (const Shard &sh : shards)
            w.value(sh.wait);
        w.endArray();
        // max/mean busy: 1.0 = perfectly balanced shards.
        w.field("imbalance", busy_mean > 0.0
                                 ? static_cast<double>(busy_max) /
                                       busy_mean
                                 : 1.0);
        if (skew && skew->count() > 0) {
            w.field("barrier_skew_us_mean", skew->mean());
            w.field("barrier_skew_us_max", skew->max());
        }
        w.endObject();
    }

    if (have_frontend) {
        w.key("trace_frontend");
        w.beginObject();
        w.field("chunks_decoded", fe.chunks);
        w.field("accesses_decoded", fe.accesses);
        w.field("bytes_decoded", fe.bytes);
        w.field("decode_us", fe.decodeUs);
        w.field("producer_stall_us", fe.stallUs);
        w.field("consumer_wait_us", fe.waitUs);
        w.endObject();
    }

    if (!sites.empty()) {
        std::vector<std::pair<const LockSite *, LockSite::Totals>>
            ranked;
        ranked.reserve(sites.size());
        for (const LockSite *s : sites)
            ranked.emplace_back(s, s->totals());
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto &a, const auto &b) {
                      if (a.second.contended != b.second.contended)
                          return a.second.contended > b.second.contended;
                      if (a.second.spinNs != b.second.spinNs)
                          return a.second.spinNs > b.second.spinNs;
                      return a.second.retries > b.second.retries;
                  });
        w.key("locks");
        w.beginObject();
        w.field("sites", static_cast<std::uint64_t>(sites.size()));
        w.key("top_contended");
        w.beginArray();
        const std::size_t top = std::min<std::size_t>(5, ranked.size());
        for (std::size_t i = 0; i < top; ++i) {
            const LockSite::Totals &t = ranked[i].second;
            w.beginObject();
            w.field("site", ranked[i].first->name());
            w.field("acquisitions", t.acquisitions);
            w.field("contended", t.contended);
            w.field("retries", t.retries);
            w.field("spin_us", t.spinNs / 1000);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }

    w.endObject();
}

void
BenchOutput::write()
{
    written_ = true;

    if (!jsonPath_.empty()) {
        JsonWriter w;
        w.beginObject();
        w.field("schema_version", kSchemaVersion);
        w.field("bench", bench_);

        w.key("config");
        w.beginObject();
        w.field("host_nodes", ScaledDefaults::kHostNodes);
        w.field("host_node_bytes", ScaledDefaults::kHostNodeBytes);
        w.field("guest_nodes", ScaledDefaults::kGuestNodes);
        w.field("guest_node_bytes", ScaledDefaults::kGuestNodeBytes);
        w.field("lock_stats", lockStats_);
        w.field("attrib", attrib_);
        for (const Note &n : notes_) {
            w.key(n.key);
            if (n.isNum)
                w.value(n.num);
            else
                w.value(n.str);
        }
        // The RunInfo reproducibility record: RNG seeds and the full
        // knob set of every kernel the run instantiated.
        w.key("run");
        obs::RunInfo::global().writeJson(w);
        w.endObject();

        w.key("rows");
        w.beginArray();
        for (const Report &rep : reports_)
            rep.toJson(w);
        w.endArray();

        w.key("metrics");
        obs::MetricRegistry::global().writeJson(w);

        // Derived concurrency report: present whenever the run
        // recorded worker/shard accounting or lock stats were on.
        writeScaling(w);

        // Cost attribution ("where do the cycles go"): present only
        // when --attrib ran at least one instrumented kernel.
        obs::AttribRegistry::global().writeSection(w);

        w.endObject();

        std::FILE *f = std::fopen(jsonPath_.c_str(), "w");
        if (!f)
            fatal("cannot open --json output '%s'", jsonPath_.c_str());
        const std::string &doc = w.str();
        std::fwrite(doc.data(), 1, doc.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("json: wrote %s\n", jsonPath_.c_str());
    }

    if (!tracePath_.empty()) {
        obs::TraceSink &sink = obs::TraceSink::global();
        const bool ok = endsWith(tracePath_, ".jsonl")
                            ? sink.writeJsonl(tracePath_)
                            : sink.writeChromeTrace(tracePath_);
        if (!ok)
            fatal("cannot open --trace output '%s'", tracePath_.c_str());
        std::printf("trace: wrote %s (%llu events, %llu dropped)\n",
                    tracePath_.c_str(),
                    static_cast<unsigned long long>(sink.size()),
                    static_cast<unsigned long long>(sink.dropped()));
    }

    if (!timelinePath_.empty()) {
        obs::TimelineSink &sink = obs::TimelineSink::global();
        const std::uint64_t records = sink.records();
        const std::uint64_t streams = sink.streams();
        sink.close();
        std::printf("timeline: wrote %s (%llu snapshots, %llu streams)\n",
                    timelinePath_.c_str(),
                    static_cast<unsigned long long>(records),
                    static_cast<unsigned long long>(streams));
    }

    std::fflush(stdout);
}

} // namespace contig
