/**
 * @file
 * Extension experiment: shadow paging vs nested paging (the paper's
 * related-work §VII notes CA paging and SpOT are "agnostic to the
 * virtualization technology and directly applicable to shadow and
 * hybrid paging"). The hypervisor traps guest page-table updates and
 * maintains a flat gVA->hPA shadow table:
 *  - TLB misses walk ONE table (native-depth cost, no 2-D blow-up),
 *  - but every guest PTE update costs a VM exit.
 * The classic trade-off (cf. Agile Paging): fault-heavy phases favour
 * nested paging, walk-heavy steady state favours shadow paging — and
 * SpOT narrows the gap from the nested side.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/bench_io.hh"
#include "core/report.hh"
#include "policies/ca_paging.hh"

using namespace contig;

namespace
{

/** Modelled cost of one shadow-sync VM exit. */
constexpr Cycles kVmExitCycles = 1200;

struct Outcome
{
    double walkOverhead = 0.0; //!< steady-state translation overhead
    double avgWalk = 0.0;
    std::uint64_t exits = 0;   //!< shadow-sync VM exits during setup
    double setupOverheadCycles = 0.0;
};

Outcome
run(bool shadow, XlatScheme scheme)
{
    KernelConfig hostCfg = kernelConfigFor(PolicyKind::Ca);
    Kernel host(hostCfg, std::make_unique<CaPagingPolicy>());
    VirtualMachine vm(host, std::make_unique<CaPagingPolicy>(),
                      ScaledDefaults::vm());

    auto wl = makeWorkload("xsbench", {1.0, 7});
    Process &proc = vm.guest().createProcess("xs");
    if (shadow)
        vm.enableShadowPaging(proc);
    wl->setup(proc);

    XlatConfig cfg;
    cfg.tlb = ScaledDefaults::tlb();
    cfg.walker = ScaledDefaults::walker();
    cfg.scheme = scheme;
    cfg.spot = ScaledDefaults::spot();

    std::unique_ptr<TranslationSim> sim;
    if (shadow) {
        // Shadow: the hardware walks the flat gVA->hPA table.
        sim = std::make_unique<TranslationSim>(cfg,
                                               vm.shadowTable(proc));
    } else {
        sim = std::make_unique<TranslationSim>(cfg, proc.pageTable(),
                                               vm);
    }
    Rng rng(99);
    for (std::uint64_t i = 0; i < 1'000'000; ++i)
        sim->access(wl->nextAccess(rng));

    Outcome out;
    out.walkOverhead =
        overheadOf(sim->stats(), ScaledDefaults::perf()).overhead;
    out.avgWalk = sim->stats().avgWalkCycles();
    out.exits = vm.shadowExits();
    out.setupOverheadCycles =
        static_cast<double>(out.exits) * kVmExitCycles;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("ext_shadow_paging", argc, argv);

    auto nested = run(false, XlatScheme::Base);
    auto nested_spot = run(false, XlatScheme::Spot);
    auto shadow = run(true, XlatScheme::Base);
    auto shadow_spot = run(true, XlatScheme::Spot);

    Report rep("Extension — shadow vs nested paging "
               "(xsbench, CA guest+host)");
    rep.header({"mode", "avg walk (cycles)", "walk overhead",
                "setup VM exits"});
    rep.row({"nested", Report::num(nested.avgWalk, 1),
             Report::pct(nested.walkOverhead),
             std::to_string(nested.exits)});
    rep.row({"nested + SpOT", Report::num(nested_spot.avgWalk, 1),
             Report::pct(nested_spot.walkOverhead, 2),
             std::to_string(nested_spot.exits)});
    rep.row({"shadow", Report::num(shadow.avgWalk, 1),
             Report::pct(shadow.walkOverhead),
             std::to_string(shadow.exits)});
    rep.row({"shadow + SpOT", Report::num(shadow_spot.avgWalk, 1),
             Report::pct(shadow_spot.walkOverhead, 2),
             std::to_string(shadow_spot.exits)});
    out.add(rep);
    rep.print();

    std::printf("\nexpected: shadow walks cost native depth (~2-3x "
                "cheaper than nested) but pay ~%u-cycle VM exits per "
                "guest PTE update during the allocation phase; SpOT "
                "hides the walk cost in BOTH modes (it is agnostic to "
                "the virtualization technique, as the paper argues)\n",
                static_cast<unsigned>(kVmExitCycles));
    out.write();
    return 0;
}
