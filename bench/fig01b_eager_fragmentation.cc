/**
 * @file
 * Reproduces Fig. 1b: coverage of the 32 largest mappings when
 * PageRank runs 10 consecutive times on the same machine. Each run
 * re-reads the (persisting) graph file through the page cache and
 * leaves behind a per-run output file — the long-lived allocations
 * that progressively fragment physical memory.
 * Expected shape: eager paging's coverage decays run after run
 * (aligned high-order blocks disappear); CA paging sustains coverage
 * because it packs both anonymous and page-cache memory.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/bench_io.hh"
#include "core/report.hh"

using namespace contig;

namespace
{

constexpr int kRuns = 10;
constexpr std::uint64_t kChurnIslands = 48; // pinned bursts per run

double
runSeries(PolicyKind kind, std::vector<double> &coverage)
{
    NativeSystem sys(kind, 7);
    std::optional<std::uint32_t> graph_file;
    for (int run = 0; run < kRuns; ++run) {
        auto wl = makeWorkload("pagerank", {1.0, 7});
        if (graph_file)
            wl->setInputFile(*graph_file);
        auto r = sys.run(*wl);
        graph_file = wl->inputFileId();
        coverage.push_back(r.final.cov32);
        sys.finish(*wl);
        // Between runs the system ages: log/output pages accumulate
        // in the page cache amid allocation entropy.
        systemChurn(sys.kernel(), kChurnIslands, 1000 + run);
    }
    return coverage.back();
}

} // namespace

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("fig01b_eager_fragmentation", argc, argv);

    std::vector<double> eager, ca;
    runSeries(PolicyKind::Eager, eager);
    runSeries(PolicyKind::Ca, ca);

    Report rep("Fig. 1b — 32-largest-mappings coverage across 10 "
               "consecutive PageRank runs");
    rep.header({"run", "eager", "CA"});
    for (int i = 0; i < kRuns; ++i) {
        rep.row({std::to_string(i + 1), Report::pct(eager[i]),
                 Report::pct(ca[i])});
    }
    out.add(rep);
    rep.print();

    std::printf("\npaper: eager coverage drops progressively with "
                "external fragmentation; CA sustains it\n");
    out.write();
    return 0;
}
