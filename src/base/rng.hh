/**
 * @file
 * Deterministic pseudo-random number generation for reproducible
 * experiments: a xoshiro256** core plus the distribution samplers the
 * synthetic workloads need (uniform, Zipf/power-law, geometric).
 */

#ifndef CONTIG_BASE_RNG_HH
#define CONTIG_BASE_RNG_HH

#include <cstdint>
#include <vector>

namespace contig
{

/**
 * Deterministic 64-bit PRNG (xoshiro256**). Seeded via SplitMix64 so a
 * single 64-bit seed fully determines the stream.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using Lemire's method. bound > 0. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** True with the given probability. */
    bool chance(double p);

    /**
     * Raw xoshiro256** state, for checkpoint/restore. setState with a
     * previously captured state resumes the stream exactly where the
     * capture left it.
     */
    void
    state(std::uint64_t out[4]) const
    {
        for (int i = 0; i < 4; ++i)
            out[i] = s_[i];
    }

    void
    setState(const std::uint64_t in[4])
    {
        for (int i = 0; i < 4; ++i)
            s_[i] = in[i];
    }

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = below(i);
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    std::uint64_t s_[4];
};

/**
 * Zipf(N, s) sampler over {0, ..., n-1} using the rejection-inversion
 * method of Hormann & Derflinger, O(1) per sample. Used by the graph
 * and hash-join workload generators to model power-law access skew.
 */
class ZipfSampler
{
  public:
    /**
     * @param n Number of items (ranks 0..n-1; rank 0 is hottest).
     * @param s Skew exponent, s >= 0 (s == 0 degenerates to uniform).
     */
    ZipfSampler(std::uint64_t n, double s);

    /** Draw one rank. */
    std::uint64_t sample(Rng &rng);

    std::uint64_t n() const { return n_; }
    double skew() const { return s_; }

  private:
    double h(double x) const;
    double hInv(double x) const;

    std::uint64_t n_;
    double s_;
    double hx0_;
    double hxm_;
    double invSMinusOne_;
};

} // namespace contig

#endif // CONTIG_BASE_RNG_HH
