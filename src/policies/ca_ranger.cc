#include "policies/ca_ranger.hh"

#include "mm/kernel.hh"

namespace contig
{

CaRangerPolicy::CaRangerPolicy(const CaRangerConfig &cfg)
    : CaPagingPolicy(cfg.ca), cfg_(cfg), ranger_(cfg.ranger)
{
}

double
CaRangerPolicy::largestRunCoverage(Process &proc, const Vma &vma)
{
    const Vpn start = vma.start().pageNumber();
    const Vpn end = start + vma.pages();
    std::uint64_t best = 0, cur = 0, mapped = 0;
    std::int64_t last_off = 0;
    Vpn last_end = 0;
    bool have = false;
    proc.pageTable().forEachLeaf([&](Vpn vpn, const Mapping &m) {
        if (vpn < start || vpn >= end)
            return;
        const std::uint64_t n = pagesInOrder(m.order);
        const std::int64_t off = static_cast<std::int64_t>(vpn) -
                                 static_cast<std::int64_t>(m.pfn);
        if (have && off == last_off && vpn == last_end)
            cur += n;
        else
            cur = n;
        last_off = off;
        last_end = vpn + n;
        have = true;
        best = std::max(best, cur);
        mapped += n;
    });
    return mapped ? static_cast<double>(best) / mapped : 1.0;
}

void
CaRangerPolicy::onTick(Kernel &kernel)
{
    // Gate the daemon on actual need: CA paging usually leaves
    // nothing to repair, so the migration cost of ranger is paid only
    // where placement was forced to fragment.
    bool any_unhealthy = false;
    kernel.forEachProcess([&](Process &proc) {
        if (!proc.defragEligible)
            return;
        proc.addressSpace().forEachVma([&](Vma &vma) {
            if (vma.kind() == VmaKind::File || vma.allocatedPages == 0)
                return;
            if (largestRunCoverage(proc, vma) <
                cfg_.repairBelowCoverage) {
                any_unhealthy = true;
                ++cstats_.vmasRepaired;
            } else {
                ++cstats_.vmasSkippedHealthy;
            }
        });
    });
    if (any_unhealthy)
        ranger_.onTick(kernel);
}

void
CaRangerPolicy::onMunmap(Kernel &kernel, Process &proc, Vma &vma)
{
    CaPagingPolicy::onMunmap(kernel, proc, vma);
    ranger_.onMunmap(kernel, proc, vma);
}

} // namespace contig
