#!/usr/bin/env python3
"""Gate the observability tax measured by micro_obs_overhead.

Usage: obs_overhead_gate.py --record <benchmark_out.json> <baseline.json>
       obs_overhead_gate.py --check  <benchmark_out.json> <baseline.json>
                            [--tolerance FRACTION]

micro_obs_overhead is a google-benchmark binary; its --benchmark_out
JSON carries absolute per-iteration times that are meaningless across
machines. What IS portable is the *ratio* of each instrumented loop to
the bare loop from the same run (same machine, same boost state):

    ratio(B) = cpu_time(B) / cpu_time(BM_BareLoop)

--record reduces a fresh benchmark_out file to those ratios and writes
them as the committed baseline. --check recomputes them from a new run
and fails if any tracked benchmark's ratio grew by more than the
tolerance (default 0.25, i.e. 25% relative — CI machines are noisy;
a real regression such as an unconditional clock read in the
uninstrumented SpinLock path shows up as 2-10x, far above it).

The headline gate is BM_SpinLockBare: a SpinLock with the lock-stats
accounting compiled in but no site bound — the shipping default — must
stay a hair over the bare loop (one null-check after the exchange).

Registered in scripts/ci.sh after the bench-artifact step.
"""

import json
import sys
from pathlib import Path

# Benchmarks whose ratio-to-bare is gated. BM_TraceEnabled,
# BM_SnapshotCapture etc. price enabled-mode features and are
# recorded for reference but not gated.
GATED = (
    "BM_TraceDisabled",
    "BM_SamplerDetached",
    "BM_SpinLockBare",
    "BM_SpinLockInstrumented",
    "BM_AttribOff",
)


def fail(msg):
    print(f"obs_overhead_gate: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def ratios(path):
    doc = json.loads(Path(path).read_text())
    times = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        times[b["name"]] = float(b["cpu_time"])
    if "BM_BareLoop" not in times:
        fail(f"{path}: no BM_BareLoop row to normalize against")
    bare = times["BM_BareLoop"]
    if bare <= 0:
        fail(f"{path}: BM_BareLoop cpu_time is not positive")
    return {name: t / bare for name, t in sorted(times.items())
            if name != "BM_BareLoop"}


def main():
    argv = sys.argv[1:]
    tolerance = 0.25
    if "--tolerance" in argv:
        i = argv.index("--tolerance")
        tolerance = float(argv[i + 1])
        del argv[i:i + 2]
    if len(argv) != 3 or argv[0] not in ("--record", "--check"):
        fail("usage: obs_overhead_gate.py --record|--check "
             "<benchmark_out.json> <baseline.json> "
             "[--tolerance FRACTION]")
    mode, bench_out, baseline_path = argv

    current = ratios(bench_out)

    if mode == "--record":
        doc = {"normalized_to": "BM_BareLoop", "ratios": current}
        Path(baseline_path).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"obs_overhead_gate: recorded {len(current)} ratios "
              f"to {baseline_path}")
        return

    base_doc = json.loads(Path(baseline_path).read_text())
    base = base_doc.get("ratios", {})
    errors = []
    for name in GATED:
        if name not in current:
            errors.append(f"{name}: missing from current run")
            continue
        if name not in base:
            errors.append(f"{name}: missing from baseline "
                          f"(re-record {baseline_path})")
            continue
        cur, ref = current[name], base[name]
        if cur > ref * (1.0 + tolerance):
            errors.append(
                f"{name}: ratio-to-bare {cur:.3f} exceeds baseline "
                f"{ref:.3f} by more than {tolerance:.0%}")
        else:
            print(f"obs_overhead_gate: {name}: {cur:.3f} vs "
                  f"baseline {ref:.3f} (ok)")
    if errors:
        for e in errors:
            print(f"obs_overhead_gate: {e}", file=sys.stderr)
        fail(f"{len(errors)} overhead regression(s)")
    print("obs_overhead_gate: OK")


if __name__ == "__main__":
    main()
