
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/json.cc" "src/CMakeFiles/contig.dir/base/json.cc.o" "gcc" "src/CMakeFiles/contig.dir/base/json.cc.o.d"
  "/root/repo/src/base/logging.cc" "src/CMakeFiles/contig.dir/base/logging.cc.o" "gcc" "src/CMakeFiles/contig.dir/base/logging.cc.o.d"
  "/root/repo/src/base/rng.cc" "src/CMakeFiles/contig.dir/base/rng.cc.o" "gcc" "src/CMakeFiles/contig.dir/base/rng.cc.o.d"
  "/root/repo/src/base/stats.cc" "src/CMakeFiles/contig.dir/base/stats.cc.o" "gcc" "src/CMakeFiles/contig.dir/base/stats.cc.o.d"
  "/root/repo/src/contig/analysis.cc" "src/CMakeFiles/contig.dir/contig/analysis.cc.o" "gcc" "src/CMakeFiles/contig.dir/contig/analysis.cc.o.d"
  "/root/repo/src/core/bench_io.cc" "src/CMakeFiles/contig.dir/core/bench_io.cc.o" "gcc" "src/CMakeFiles/contig.dir/core/bench_io.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/contig.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/contig.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/parallel.cc" "src/CMakeFiles/contig.dir/core/parallel.cc.o" "gcc" "src/CMakeFiles/contig.dir/core/parallel.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/contig.dir/core/report.cc.o" "gcc" "src/CMakeFiles/contig.dir/core/report.cc.o.d"
  "/root/repo/src/mm/address_space.cc" "src/CMakeFiles/contig.dir/mm/address_space.cc.o" "gcc" "src/CMakeFiles/contig.dir/mm/address_space.cc.o.d"
  "/root/repo/src/mm/fault_engine.cc" "src/CMakeFiles/contig.dir/mm/fault_engine.cc.o" "gcc" "src/CMakeFiles/contig.dir/mm/fault_engine.cc.o.d"
  "/root/repo/src/mm/kernel.cc" "src/CMakeFiles/contig.dir/mm/kernel.cc.o" "gcc" "src/CMakeFiles/contig.dir/mm/kernel.cc.o.d"
  "/root/repo/src/mm/migrate.cc" "src/CMakeFiles/contig.dir/mm/migrate.cc.o" "gcc" "src/CMakeFiles/contig.dir/mm/migrate.cc.o.d"
  "/root/repo/src/mm/page_cache.cc" "src/CMakeFiles/contig.dir/mm/page_cache.cc.o" "gcc" "src/CMakeFiles/contig.dir/mm/page_cache.cc.o.d"
  "/root/repo/src/mm/page_table.cc" "src/CMakeFiles/contig.dir/mm/page_table.cc.o" "gcc" "src/CMakeFiles/contig.dir/mm/page_table.cc.o.d"
  "/root/repo/src/mm/policy.cc" "src/CMakeFiles/contig.dir/mm/policy.cc.o" "gcc" "src/CMakeFiles/contig.dir/mm/policy.cc.o.d"
  "/root/repo/src/mm/process.cc" "src/CMakeFiles/contig.dir/mm/process.cc.o" "gcc" "src/CMakeFiles/contig.dir/mm/process.cc.o.d"
  "/root/repo/src/obs/metrics.cc" "src/CMakeFiles/contig.dir/obs/metrics.cc.o" "gcc" "src/CMakeFiles/contig.dir/obs/metrics.cc.o.d"
  "/root/repo/src/obs/observatory.cc" "src/CMakeFiles/contig.dir/obs/observatory.cc.o" "gcc" "src/CMakeFiles/contig.dir/obs/observatory.cc.o.d"
  "/root/repo/src/obs/phase.cc" "src/CMakeFiles/contig.dir/obs/phase.cc.o" "gcc" "src/CMakeFiles/contig.dir/obs/phase.cc.o.d"
  "/root/repo/src/obs/snapshot.cc" "src/CMakeFiles/contig.dir/obs/snapshot.cc.o" "gcc" "src/CMakeFiles/contig.dir/obs/snapshot.cc.o.d"
  "/root/repo/src/obs/trace.cc" "src/CMakeFiles/contig.dir/obs/trace.cc.o" "gcc" "src/CMakeFiles/contig.dir/obs/trace.cc.o.d"
  "/root/repo/src/perfmodel/model.cc" "src/CMakeFiles/contig.dir/perfmodel/model.cc.o" "gcc" "src/CMakeFiles/contig.dir/perfmodel/model.cc.o.d"
  "/root/repo/src/phys/buddy.cc" "src/CMakeFiles/contig.dir/phys/buddy.cc.o" "gcc" "src/CMakeFiles/contig.dir/phys/buddy.cc.o.d"
  "/root/repo/src/phys/contiguity_map.cc" "src/CMakeFiles/contig.dir/phys/contiguity_map.cc.o" "gcc" "src/CMakeFiles/contig.dir/phys/contiguity_map.cc.o.d"
  "/root/repo/src/phys/phys_mem.cc" "src/CMakeFiles/contig.dir/phys/phys_mem.cc.o" "gcc" "src/CMakeFiles/contig.dir/phys/phys_mem.cc.o.d"
  "/root/repo/src/phys/zone.cc" "src/CMakeFiles/contig.dir/phys/zone.cc.o" "gcc" "src/CMakeFiles/contig.dir/phys/zone.cc.o.d"
  "/root/repo/src/policies/ca_paging.cc" "src/CMakeFiles/contig.dir/policies/ca_paging.cc.o" "gcc" "src/CMakeFiles/contig.dir/policies/ca_paging.cc.o.d"
  "/root/repo/src/policies/ca_ranger.cc" "src/CMakeFiles/contig.dir/policies/ca_ranger.cc.o" "gcc" "src/CMakeFiles/contig.dir/policies/ca_ranger.cc.o.d"
  "/root/repo/src/policies/ca_reserve.cc" "src/CMakeFiles/contig.dir/policies/ca_reserve.cc.o" "gcc" "src/CMakeFiles/contig.dir/policies/ca_reserve.cc.o.d"
  "/root/repo/src/policies/eager.cc" "src/CMakeFiles/contig.dir/policies/eager.cc.o" "gcc" "src/CMakeFiles/contig.dir/policies/eager.cc.o.d"
  "/root/repo/src/policies/ideal.cc" "src/CMakeFiles/contig.dir/policies/ideal.cc.o" "gcc" "src/CMakeFiles/contig.dir/policies/ideal.cc.o.d"
  "/root/repo/src/policies/ingens.cc" "src/CMakeFiles/contig.dir/policies/ingens.cc.o" "gcc" "src/CMakeFiles/contig.dir/policies/ingens.cc.o.d"
  "/root/repo/src/policies/ranger.cc" "src/CMakeFiles/contig.dir/policies/ranger.cc.o" "gcc" "src/CMakeFiles/contig.dir/policies/ranger.cc.o.d"
  "/root/repo/src/ranges/ranges.cc" "src/CMakeFiles/contig.dir/ranges/ranges.cc.o" "gcc" "src/CMakeFiles/contig.dir/ranges/ranges.cc.o.d"
  "/root/repo/src/spot/spot.cc" "src/CMakeFiles/contig.dir/spot/spot.cc.o" "gcc" "src/CMakeFiles/contig.dir/spot/spot.cc.o.d"
  "/root/repo/src/tlb/tlb.cc" "src/CMakeFiles/contig.dir/tlb/tlb.cc.o" "gcc" "src/CMakeFiles/contig.dir/tlb/tlb.cc.o.d"
  "/root/repo/src/tlb/translation_sim.cc" "src/CMakeFiles/contig.dir/tlb/translation_sim.cc.o" "gcc" "src/CMakeFiles/contig.dir/tlb/translation_sim.cc.o.d"
  "/root/repo/src/tlb/walker.cc" "src/CMakeFiles/contig.dir/tlb/walker.cc.o" "gcc" "src/CMakeFiles/contig.dir/tlb/walker.cc.o.d"
  "/root/repo/src/virt/vm.cc" "src/CMakeFiles/contig.dir/virt/vm.cc.o" "gcc" "src/CMakeFiles/contig.dir/virt/vm.cc.o.d"
  "/root/repo/src/workloads/workloads.cc" "src/CMakeFiles/contig.dir/workloads/workloads.cc.o" "gcc" "src/CMakeFiles/contig.dir/workloads/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
