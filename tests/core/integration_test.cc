/**
 * Integration tests: whole-system behaviours spanning the allocator,
 * the VM layer, the TLB simulator and the prediction hardware — the
 * paper's end-to-end claims in miniature.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "ranges/ranges.hh"

using namespace contig;

namespace
{

WorkloadConfig
quick(std::uint64_t seed = 5)
{
    WorkloadConfig cfg;
    cfg.scale = 0.15;
    cfg.seed = seed;
    return cfg;
}

} // namespace

TEST(Integration, CaBeatsThpOnContiguity)
{
    NativeSystem thp(PolicyKind::Thp, 5);
    NativeSystem ca(PolicyKind::Ca, 5);
    auto w1 = makeWorkload("pagerank", quick());
    auto w2 = makeWorkload("pagerank", quick());
    auto r_thp = thp.run(*w1);
    auto r_ca = ca.run(*w2);
    EXPECT_LT(r_ca.final.mappingsFor99, r_thp.final.mappingsFor99 / 4);
    EXPECT_GE(r_ca.final.cov32, r_thp.final.cov32);
    thp.finish(*w1);
    ca.finish(*w2);
}

TEST(Integration, VirtualizedCaCreates2dContiguity)
{
    VirtSystem sys(PolicyKind::Ca, PolicyKind::Ca, 5);
    auto wl = makeWorkload("xsbench", quick());
    auto r = sys.run(*wl);
    // 99% of the footprint in a handful of full 2-D mappings.
    EXPECT_LE(r.final.mappingsFor99, 16u);
    sys.finish(*wl);
}

TEST(Integration, SpotHidesMostNestedWalks)
{
    VirtSystem sys(PolicyKind::Ca, PolicyKind::Ca, 5);
    auto wl = makeWorkload("pagerank", quick());
    Process &proc = sys.guest().createProcess("pr");
    wl->setup(proc);
    auto base = runTranslation(*wl, &sys.vm(), XlatScheme::Base, 300000);
    auto spot = runTranslation(*wl, &sys.vm(), XlatScheme::Spot, 300000);
    ASSERT_GT(base.stats.walks, 100u);
    // SpOT hides the vast majority of the translation overhead.
    EXPECT_LT(spot.overhead.overhead, base.overhead.overhead / 5);
    const double correct_frac =
        static_cast<double>(spot.stats.spotCorrect) / spot.stats.walks;
    EXPECT_GT(correct_frac, 0.9);
    wl->teardown();
}

TEST(Integration, SpotWithoutCaContiguityCannotPredict)
{
    // The hardware needs the software: default THP's scattered 2 MiB
    // mappings give SpOT nothing stable to predict.
    VirtSystem sys(PolicyKind::Thp, PolicyKind::Thp, 5);
    auto wl = makeWorkload("pagerank", quick());
    Process &proc = sys.guest().createProcess("pr");
    wl->setup(proc);
    auto spot = runTranslation(*wl, &sys.vm(), XlatScheme::Spot, 300000);
    const double correct_frac =
        spot.stats.walks
            ? static_cast<double>(spot.stats.spotCorrect) /
                  spot.stats.walks
            : 0.0;
    EXPECT_LT(correct_frac, 0.5);
    wl->teardown();
}

TEST(Integration, RmmRangeTlbCoversCaMappings)
{
    VirtSystem sys(PolicyKind::Ca, PolicyKind::Ca, 5);
    auto wl = makeWorkload("hashjoin", quick());
    Process &proc = sys.guest().createProcess("hj");
    wl->setup(proc);
    auto rmm = runTranslation(*wl, &sys.vm(), XlatScheme::Rmm, 300000);
    // With tens of ranges and a 32-entry range TLB, nearly every miss
    // is served from a cached range.
    EXPECT_LT(rmm.overhead.overhead, 0.005);
    wl->teardown();
}

TEST(Integration, DirectSegmentsEliminateOverhead)
{
    VirtSystem sys(PolicyKind::Ca, PolicyKind::Ca, 5);
    auto wl = makeWorkload("xsbench", quick());
    Process &proc = sys.guest().createProcess("xs");
    wl->setup(proc);
    auto ds = runTranslation(*wl, &sys.vm(), XlatScheme::Ds, 300000);
    EXPECT_EQ(ds.stats.walks, 0u);
    EXPECT_EQ(ds.overhead.overhead, 0.0);
    wl->teardown();
}

TEST(Integration, VirtualizedWalksCostMoreThanNative)
{
    NativeSystem nsys(PolicyKind::Thp, 5);
    auto w1 = makeWorkload("xsbench", quick());
    Process &np = nsys.kernel().createProcess("xs");
    w1->setup(np);
    auto native = runTranslation(*w1, nullptr, XlatScheme::Base, 300000);

    VirtSystem vsys(PolicyKind::Thp, PolicyKind::Thp, 5);
    auto w2 = makeWorkload("xsbench", quick());
    Process &vp = vsys.guest().createProcess("xs");
    w2->setup(vp);
    auto virt = runTranslation(*w2, &vsys.vm(), XlatScheme::Base, 300000);

    EXPECT_GT(virt.stats.avgWalkCycles(),
              1.5 * native.stats.avgWalkCycles());
    EXPECT_GT(virt.overhead.overhead, native.overhead.overhead);
    w1->teardown();
    w2->teardown();
}

TEST(Integration, FragmentationHurtsEagerMoreThanCa)
{
    auto run = [](PolicyKind kind) {
        NativeSystem sys(kind, 5);
        sys.hog(0.4);
        auto wl = makeWorkload("svm", quick());
        auto r = sys.run(*wl);
        double cov = r.final.cov32;
        sys.finish(*wl);
        return cov;
    };
    EXPECT_GT(run(PolicyKind::Ca), run(PolicyKind::Eager));
}

TEST(Integration, UslEstimateShapes)
{
    VirtSystem sys(PolicyKind::Ca, PolicyKind::Ca, 5);
    auto wl = makeWorkload("pagerank", quick());
    Process &proc = sys.guest().createProcess("pr");
    wl->setup(proc);
    auto r = runTranslation(*wl, &sys.vm(), XlatScheme::Spot, 300000);
    auto usl = estimateUsl(r.stats);
    // TLB-miss speculation windows are far rarer than branch windows.
    EXPECT_LT(usl.dtlbMissesPerInstr, usl.branchesPerInstr / 4);
    EXPECT_LT(usl.spotUslPerInstr, usl.spectreUslPerInstr);
    wl->teardown();
}

TEST(Integration, PolicyFactoryCoversAllKinds)
{
    for (PolicyKind kind :
         {PolicyKind::Thp, PolicyKind::Base4k, PolicyKind::Ca,
          PolicyKind::Eager, PolicyKind::Ingens, PolicyKind::Ranger,
          PolicyKind::Ideal}) {
        auto policy = makePolicy(kind);
        ASSERT_TRUE(policy);
        EXPECT_FALSE(policyName(kind).empty());
        EXPECT_FALSE(policy->name().empty());
    }
}
