#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "base/json.hh"

using namespace contig;

TEST(JsonWriter, EmptyObject)
{
    JsonWriter w;
    w.beginObject();
    w.endObject();
    EXPECT_TRUE(w.complete());
    EXPECT_EQ(w.str(), "{}");
}

TEST(JsonWriter, EmptyArray)
{
    JsonWriter w;
    w.beginArray();
    w.endArray();
    EXPECT_EQ(w.str(), "[]");
}

TEST(JsonWriter, ObjectCommas)
{
    JsonWriter w;
    w.beginObject();
    w.field("a", 1);
    w.field("b", 2);
    w.endObject();
    EXPECT_EQ(w.str(), "{\"a\":1,\"b\":2}");
}

TEST(JsonWriter, ArrayCommas)
{
    JsonWriter w;
    w.beginArray();
    w.value(1);
    w.value(2);
    w.value(3);
    w.endArray();
    EXPECT_EQ(w.str(), "[1,2,3]");
}

TEST(JsonWriter, Nesting)
{
    JsonWriter w;
    w.beginObject();
    w.key("rows");
    w.beginArray();
    w.beginObject();
    w.field("x", true);
    w.endObject();
    w.beginObject();
    w.endObject();
    w.endArray();
    w.endObject();
    EXPECT_EQ(w.str(), "{\"rows\":[{\"x\":true},{}]}");
}

TEST(JsonWriter, Scalars)
{
    JsonWriter w;
    w.beginArray();
    w.value(true);
    w.value(false);
    w.null();
    w.value(std::uint64_t{18446744073709551615ull});
    w.value(std::int64_t{-5});
    w.endArray();
    EXPECT_EQ(w.str(), "[true,false,null,18446744073709551615,-5]");
}

TEST(JsonWriter, Doubles)
{
    JsonWriter w;
    w.beginArray();
    w.value(1.5);
    w.value(0.0);
    w.value(-2.25);
    w.endArray();
    EXPECT_EQ(w.str(), "[1.5,0,-2.25]");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    JsonWriter w;
    w.beginArray();
    w.value(std::numeric_limits<double>::quiet_NaN());
    w.value(std::numeric_limits<double>::infinity());
    w.value(-std::numeric_limits<double>::infinity());
    w.endArray();
    EXPECT_EQ(w.str(), "[null,null,null]");
}

TEST(JsonWriter, TopLevelScalar)
{
    JsonWriter w;
    w.value("hi");
    EXPECT_TRUE(w.complete());
    EXPECT_EQ(w.str(), "\"hi\"");
}

TEST(JsonWriter, CompleteTracksNesting)
{
    JsonWriter w;
    EXPECT_FALSE(w.complete());
    w.beginObject();
    EXPECT_FALSE(w.complete());
    w.key("k");
    w.beginArray();
    EXPECT_FALSE(w.complete());
    w.endArray();
    w.endObject();
    EXPECT_TRUE(w.complete());
}

TEST(JsonWriter, MoveOutString)
{
    JsonWriter w;
    w.beginObject();
    w.endObject();
    std::string s = std::move(w).str();
    EXPECT_EQ(s, "{}");
}

TEST(JsonEscape, PassThrough)
{
    EXPECT_EQ(JsonWriter::escape("plain ascii 123"), "plain ascii 123");
    // UTF-8 multibyte sequences pass through untouched.
    EXPECT_EQ(JsonWriter::escape("\xC3\xA9"), "\xC3\xA9");
}

TEST(JsonEscape, Specials)
{
    EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
    EXPECT_EQ(JsonWriter::escape("\n\t\r\b\f"), "\\n\\t\\r\\b\\f");
}

TEST(JsonEscape, ControlCharacters)
{
    EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
    EXPECT_EQ(JsonWriter::escape(std::string_view("\x1f", 1)), "\\u001f");
    EXPECT_EQ(JsonWriter::escape(std::string_view("\0", 1)), "\\u0000");
}

TEST(JsonWriter, EscapedKeyAndValue)
{
    JsonWriter w;
    w.beginObject();
    w.field("quote\"key", "line\nbreak");
    w.endObject();
    EXPECT_EQ(w.str(), "{\"quote\\\"key\":\"line\\nbreak\"}");
}
