#include "base/json.hh"

#include <cmath>
#include <cstdio>

#include "base/logging.hh"

namespace contig
{

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
JsonWriter::beforeValue()
{
    contig_assert(!done_, "JsonWriter: value after document completed");
    if (stack_.empty())
        return;
    switch (stack_.back()) {
      case Frame::ObjectStart:
      case Frame::ObjectNext:
        panic("JsonWriter: value in object position without a key");
      case Frame::ObjectKey:
        stack_.back() = Frame::ObjectNext;
        break;
      case Frame::ArrayStart:
        stack_.back() = Frame::ArrayNext;
        break;
      case Frame::ArrayNext:
        raw(",");
        break;
    }
}

void
JsonWriter::beginObject()
{
    beforeValue();
    raw("{");
    stack_.push_back(Frame::ObjectStart);
}

void
JsonWriter::endObject()
{
    contig_assert(!stack_.empty() &&
                      (stack_.back() == Frame::ObjectStart ||
                       stack_.back() == Frame::ObjectNext),
                  "JsonWriter: endObject outside an object");
    stack_.pop_back();
    raw("}");
    if (stack_.empty())
        done_ = true;
}

void
JsonWriter::beginArray()
{
    beforeValue();
    raw("[");
    stack_.push_back(Frame::ArrayStart);
}

void
JsonWriter::endArray()
{
    contig_assert(!stack_.empty() && (stack_.back() == Frame::ArrayStart ||
                                      stack_.back() == Frame::ArrayNext),
                  "JsonWriter: endArray outside an array");
    stack_.pop_back();
    raw("]");
    if (stack_.empty())
        done_ = true;
}

void
JsonWriter::key(std::string_view k)
{
    contig_assert(!stack_.empty() &&
                      (stack_.back() == Frame::ObjectStart ||
                       stack_.back() == Frame::ObjectNext),
                  "JsonWriter: key outside an object");
    if (stack_.back() == Frame::ObjectNext)
        raw(",");
    raw("\"");
    raw(escape(k));
    raw("\":");
    stack_.back() = Frame::ObjectKey;
}

void
JsonWriter::value(std::string_view v)
{
    beforeValue();
    raw("\"");
    raw(escape(v));
    raw("\"");
    if (stack_.empty())
        done_ = true;
}

void
JsonWriter::value(bool v)
{
    beforeValue();
    raw(v ? "true" : "false");
    if (stack_.empty())
        done_ = true;
}

void
JsonWriter::value(double v)
{
    beforeValue();
    if (!std::isfinite(v)) {
        // JSON has no NaN/Inf literals; null is the conventional stand-in.
        raw("null");
    } else {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.12g", v);
        raw(buf);
    }
    if (stack_.empty())
        done_ = true;
}

void
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    raw(buf);
    if (stack_.empty())
        done_ = true;
}

void
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    raw(buf);
    if (stack_.empty())
        done_ = true;
}

void
JsonWriter::null()
{
    beforeValue();
    raw("null");
    if (stack_.empty())
        done_ = true;
}

bool
JsonWriter::complete() const
{
    return done_ && stack_.empty();
}

const std::string &
JsonWriter::str() const &
{
    return out_;
}

std::string
JsonWriter::str() &&
{
    return std::move(out_);
}

} // namespace contig
