/**
 * @file
 * Frame descriptors: the simulator's analogue of Linux's `struct page`
 * array (`mem_map`). One descriptor per base (4 KiB) frame of a
 * physical address space. CA paging consults these descriptors
 * (refcount/mapcount) to decide whether an allocation target is free,
 * exactly as the paper describes (§III-B).
 */

#ifndef CONTIG_PHYS_FRAME_HH
#define CONTIG_PHYS_FRAME_HH

#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"

namespace contig
{

constexpr std::uint32_t kNoOwner = std::numeric_limits<std::uint32_t>::max();

/** What kind of object a frame currently backs (for reverse mapping). */
enum class FrameOwner : std::uint8_t
{
    None,      //!< unallocated or kernel-internal
    Anon,      //!< anonymous process memory
    PageCache, //!< file-backed page-cache page
    PageTable, //!< page-table node
};

/**
 * Per-frame metadata. Mirrors the `struct page` fields the paper's
 * mechanisms rely on: `_count`/`_mapcount` for the free check, buddy
 * linkage for the free lists, and a reverse-mapping triple used by the
 * migration-based baselines (Ranger, Ingens promotion).
 *
 * Concurrency: refCount/mapCount/freeFlag are atomics because fault
 * threads touch them outside any lock — freeFlag is CA paging's
 * lockless occupancy probe (§III-C; a stale read is benign, the
 * subsequent allocSpecific re-validates under the zone lock). The
 * free-list linkage is plain: it is only touched under the owning
 * zone's lock. The owner fields are relaxed atomics: they are written
 * between a buddy alloc and the matching free (ordered by the zone
 * lock handoff), but the LRU reclaim scanner reads them from stale
 * candidate handles without any lock — a torn owner triple is benign
 * because eviction re-validates the frame against the owner's page
 * table under the victim VMA's fault lock before touching anything.
 */
struct Frame
{
    /** References held (0 while the frame sits in the buddy allocator). */
    std::atomic<std::uint32_t> refCount{0};
    /** Number of page-table mappings pointing at this frame. */
    std::atomic<std::uint32_t> mapCount{0};

    /** Buddy order of the free block this frame heads (valid if freeHead). */
    std::uint8_t order = 0;
    /** True for every frame inside a free buddy block. */
    std::atomic<bool> freeFlag{false};
    /** True only for the first frame of a free block on a free list. */
    bool freeHead = false;

    /** Intrusive free-list linkage (heads only). */
    Pfn freeNext = kInvalidPfn;
    Pfn freePrev = kInvalidPfn;

    /** Reverse mapping: which process/file and which virtual page. */
    std::atomic<FrameOwner> ownerKind{FrameOwner::None};
    std::atomic<std::uint32_t> ownerId{kNoOwner}; //!< process or file id
    std::atomic<Addr> ownerVaddr{0}; //!< owning gva (or file offset)

    // --- LRU reclaim state (reclaimEnabled kernels only) ---------------
    //
    // Mirrors the free-list idiom above: intrusive linkage on block
    // heads only, guarded by the owning zone's LRU lock. `referenced`
    // is the second-chance bit, set by the fault path outside any lock
    // (a lost update costs at worst one early eviction or one extra
    // rotation, both benign), hence atomic.

    /** Which LRU list the block headed here sits on. */
    enum class LruList : std::uint8_t { None, Inactive, Active };

    /** Intrusive LRU linkage (heads of claimed blocks only). */
    Pfn lruNext = kInvalidPfn;
    Pfn lruPrev = kInvalidPfn;
    /** Mapping order of the block this frame heads on an LRU list. */
    std::uint8_t lruOrder = 0;
    LruList lruList = LruList::None;
    /** Second-chance bit: touched since the last LRU scan looked. */
    std::atomic<bool> referenced{false};
};

/**
 * The mem_map: a flat array of Frame descriptors covering one physical
 * address space (host machine or a VM's guest-physical space).
 */
class FrameArray
{
  public:
    explicit FrameArray(std::uint64_t n_frames) : frames_(n_frames) {}

    Frame &
    operator[](Pfn pfn)
    {
        contig_assert(pfn < frames_.size(), "pfn %llu out of range",
                      static_cast<unsigned long long>(pfn));
        return frames_[pfn];
    }

    const Frame &
    operator[](Pfn pfn) const
    {
        contig_assert(pfn < frames_.size(), "pfn %llu out of range",
                      static_cast<unsigned long long>(pfn));
        return frames_[pfn];
    }

    std::uint64_t size() const { return frames_.size(); }

  private:
    std::vector<Frame> frames_;
};

} // namespace contig

#endif // CONTIG_PHYS_FRAME_HH
