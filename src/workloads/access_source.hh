/**
 * @file
 * The abstract chunk source the replay pipeline consumes. Two
 * implementations exist: AccessStream (live synthetic generation,
 * optionally teeing every chunk to a .ctrace capture file) and
 * TraceReplaySource (decode a recorded .ctrace, producer thread ahead
 * of the replay shards). runTranslation only ever sees this
 * interface — the replay loop is identical whichever side of the
 * capture/replay boundary a run sits on.
 */

#ifndef CONTIG_WORKLOADS_ACCESS_SOURCE_HH
#define CONTIG_WORKLOADS_ACCESS_SOURCE_HH

#include <cstddef>
#include <cstdint>

#include "tlb/translation_sim.hh"

namespace contig
{

class AccessSource
{
  public:
    virtual ~AccessSource() = default;

    /**
     * Produce the next chunk. Returns its size (0 when the stream is
     * exhausted) and points `chunk` at a buffer that stays valid
     * until the next call.
     */
    virtual std::size_t next(const MemAccess *&chunk) = 0;

    /** Accesses delivered so far (includes any fast-forwarded ones). */
    virtual std::uint64_t produced() const = 0;

    /** Total accesses this source will deliver over its lifetime. */
    virtual std::uint64_t total() const = 0;

    /** Nominal chunk size (the final chunk may be short). */
    virtual std::uint64_t chunkAccesses() const = 0;

    bool done() const { return produced() == total(); }
};

} // namespace contig

#endif // CONTIG_WORKLOADS_ACCESS_SOURCE_HH
