# Empty compiler generated dependencies file for ext_5level_paging.
# This may be replaced when dependencies are built.
