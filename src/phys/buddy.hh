/**
 * @file
 * Power-of-two buddy allocator over a contiguous PFN range, modelled on
 * the Linux core physical allocator that CA paging extends. It keeps
 * one free list per order in [0, maxOrder]. The top-order list can be
 * kept sorted by physical address — the fragmentation-restraint
 * optimization of the paper (§III-C) — and exposes insert/remove hooks
 * that the ContiguityMap subscribes to.
 *
 * Two extensions beyond a stock buddy allocator support CA paging:
 *  - allocSpecific(): carve an exact block out of whatever free block
 *    encloses it (the "retrieve the target page from buddy's lists"
 *    step of Fig. 2b);
 *  - enclosingFreeBlock(): the occupancy probe CA paging performs via
 *    mem_map before committing to a target.
 */

#ifndef CONTIG_PHYS_BUDDY_HH
#define CONTIG_PHYS_BUDDY_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "phys/frame.hh"

namespace contig
{

namespace obs { class MetricSink; }
class Serializer;

/** Statistics exported by a BuddyAllocator instance. */
struct BuddyStats
{
    std::uint64_t allocCalls = 0;
    std::uint64_t allocSpecificCalls = 0;
    std::uint64_t allocSpecificFailures = 0;
    std::uint64_t splits = 0;
    std::uint64_t merges = 0;
    std::uint64_t freeCalls = 0;
};

/**
 * Buddy allocator over frames [basePfn, basePfn + nFrames). nFrames
 * must be a multiple of the top-order block size so the initial free
 * space seeds cleanly into top-order blocks.
 */
class BuddyAllocator
{
  public:
    /** Callback invoked when a top-order block enters/leaves its list. */
    using TopListHook = std::function<void(Pfn)>;

    /**
     * @param frames Backing mem_map (shared with the rest of the kernel).
     * @param base_pfn First frame managed by this allocator.
     * @param n_frames Number of frames managed.
     * @param max_order Top order (Linux default 11; eager paging raises it).
     * @param sorted_top Keep the top-order list address-sorted.
     * @param scramble_seed If nonzero (and the list is unsorted), seed
     *        the initial top-order list in shuffled order.
     * @param top_stripes Stripe the top-order free list into this many
     *        address-contiguous shards (<=1 keeps the single legacy
     *        list). Insert/remove route by block address, so a sorted
     *        striped list concatenates to the same global ascending
     *        order — observable state (counts, iteration order,
     *        checkpoints) is identical to the unsharded allocator.
     */
    BuddyAllocator(FrameArray &frames, Pfn base_pfn, std::uint64_t n_frames,
                   unsigned max_order = kMaxOrder, bool sorted_top = true,
                   std::uint64_t scramble_seed = 0,
                   unsigned top_stripes = 1);

    BuddyAllocator(const BuddyAllocator &) = delete;
    BuddyAllocator &operator=(const BuddyAllocator &) = delete;

    /**
     * Allocate a block of 2^order pages. Splits larger blocks on
     * demand. Returns the block's head PFN, or nullopt if no block of
     * sufficient order is free.
     */
    std::optional<Pfn> alloc(unsigned order);

    /**
     * Allocate the specific block [pfn, pfn + 2^order). Succeeds only
     * if the whole block currently sits inside one free buddy block;
     * splits that block down as needed. pfn must be 2^order aligned.
     */
    bool allocSpecific(Pfn pfn, unsigned order);

    /** Return a block of 2^order pages, coalescing with free buddies. */
    void free(Pfn pfn, unsigned order);

    /** True iff this base page is inside some free block. */
    bool isFreePage(Pfn pfn) const;

    /**
     * The free buddy block containing pfn, if any, as (head, order).
     */
    std::optional<std::pair<Pfn, unsigned>>
    enclosingFreeBlock(Pfn pfn) const;

    /** Iterate the free blocks of one order in list order. */
    void forEachFreeBlock(unsigned order,
                          const std::function<void(Pfn)> &fn) const;

    unsigned maxOrder() const { return maxOrder_; }
    unsigned topStripes() const { return topStripes_; }
    Pfn basePfn() const { return basePfn_; }
    std::uint64_t numFrames() const { return nFrames_; }
    std::uint64_t freePages() const { return freePages_; }
    std::uint64_t freeBlocks(unsigned order) const;
    const BuddyStats &stats() const { return stats_; }

    /** Free-list lengths for every order, indexed [0, maxOrder]. */
    std::vector<std::uint64_t> freeBlockCounts() const;

    /**
     * Gorman's unusable free space index at `order` (the FMFI the
     * observatory samples): the fraction of currently-free memory
     * that cannot serve one allocation of 2^order pages because it
     * sits in smaller blocks. 0 means every free page lives in a
     * block of at least that order; 1 means none does. Returns 0
     * when no memory is free.
     */
    double unusableFreeIndex(unsigned order) const;

    /** Report counters + free-state gauges into a metric sink. */
    void collectMetrics(obs::MetricSink &sink) const;

    /** Hooks for the ContiguityMap (top-order list changes). */
    void setTopListHooks(TopListHook on_insert, TopListHook on_remove);

    /**
     * Shuffle the order of every free list (the sorted top list, if
     * enabled, is left sorted). Models the entropy an aged machine's
     * lists accumulate; used by the system-churn aging utility.
     */
    void shuffleFreeLists(std::uint64_t seed);

    /** Internal consistency check; used by the property tests. */
    bool checkInvariants() const;

    /**
     * Serialize the allocator's observable state (geometry, free-list
     * contents in list order, stats) for checkpoint verification.
     * Save-only: the kernel is rebuilt deterministically on resume and
     * the re-serialized bytes are compared against the snapshot.
     */
    void saveState(Serializer &s) const;

  private:
    struct FreeList
    {
        Pfn head = kInvalidPfn;
        std::uint64_t count = 0;
    };

    bool contains(Pfn pfn, unsigned order) const;
    Pfn buddyOf(Pfn pfn, unsigned order) const;

    void pushBlock(Pfn pfn, unsigned order);
    void removeBlock(Pfn pfn, unsigned order);
    Pfn popBlock(unsigned order);

    void insertHead(FreeList &list, Pfn pfn, unsigned order);
    void insertSorted(FreeList &list, Pfn pfn, unsigned order);
    void markAllocated(Pfn pfn, unsigned order);
    void markFree(Pfn pfn, unsigned order);

    /** Stripe index of a top-order block (0 when unstriped). */
    unsigned topStripeOf(Pfn pfn) const;
    /** The list holding blocks of this order at this address. */
    FreeList &listFor(Pfn pfn, unsigned order);
    const FreeList &listFor(Pfn pfn, unsigned order) const;
    /** Same-list check for insertSorted's neighbour splice. */
    bool sameList(Pfn a, Pfn b, unsigned order) const;
    /** Total listed blocks of one order (sums top stripes). */
    std::uint64_t listCount(unsigned order) const;
    /** True iff some block of this order is listed. */
    bool listNonEmpty(unsigned order) const;

    FrameArray &frames_;
    Pfn basePfn_;
    std::uint64_t nFrames_;
    unsigned maxOrder_;
    bool sortedTop_;
    std::vector<FreeList> lists_;
    /**
     * Top-order striping (top_stripes > 1 only): the top-order list is
     * split into per-stripe lists, routed by block address;
     * lists_[maxOrder_] is unused in that mode. topStripeSpan_ is the
     * PFNs per stripe (top-block aligned; the last stripe absorbs the
     * remainder).
     */
    unsigned topStripes_ = 1;
    std::uint64_t topStripeSpan_ = 0;
    std::vector<FreeList> topLists_;
    std::uint64_t freePages_ = 0;
    BuddyStats stats_;
    TopListHook onTopInsert_;
    TopListHook onTopRemove_;
};

} // namespace contig

#endif // CONTIG_PHYS_BUDDY_HH
