# Empty compiler generated dependencies file for fig13_translation_overhead.
# This may be replaced when dependencies are built.
