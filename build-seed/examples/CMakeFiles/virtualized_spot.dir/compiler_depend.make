# Empty compiler generated dependencies file for virtualized_spot.
# This may be replaced when dependencies are built.
