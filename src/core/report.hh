/**
 * @file
 * Plain-text table printing for the bench binaries: fixed-width
 * columns, a caption line naming the paper table/figure being
 * reproduced, and the scaled-configuration banner every bench prints
 * so results are interpretable standalone.
 */

#ifndef CONTIG_CORE_REPORT_HH
#define CONTIG_CORE_REPORT_HH

#include <cstdio>
#include <string>
#include <vector>

namespace contig
{

class JsonWriter;

/** Simple fixed-width text table. */
class Report
{
  public:
    /** @param caption e.g. "Fig. 7 — native contiguity, no pressure" */
    explicit Report(std::string caption) : caption_(std::move(caption)) {}

    void
    header(std::vector<std::string> cols)
    {
        columns_ = std::move(cols);
    }

    void
    row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    /** Print to stdout. */
    void print() const;

    const std::string &caption() const { return caption_; }
    const std::vector<std::string> &columns() const { return columns_; }
    const std::vector<std::vector<std::string>> &rows() const
    { return rows_; }

    /**
     * Emit the table as one JSON array element per row: objects with a
     * "table" key (the caption) plus one key per column. Numeric-
     * looking cells are written as numbers ("87.3%" becomes 0.873).
     */
    void toJson(JsonWriter &w) const;

    /** Format helpers. */
    static std::string num(double v, int precision = 2);
    static std::string pct(double fraction, int precision = 1);
    static std::string bytes(std::uint64_t b);

  private:
    std::string caption_;
    std::vector<std::string> columns_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print the scaled-machine banner (every bench calls this once). */
void printScaledBanner();

} // namespace contig

#endif // CONTIG_CORE_REPORT_HH
