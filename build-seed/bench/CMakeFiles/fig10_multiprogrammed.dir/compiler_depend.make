# Empty compiler generated dependencies file for fig10_multiprogrammed.
# This may be replaced when dependencies are built.
