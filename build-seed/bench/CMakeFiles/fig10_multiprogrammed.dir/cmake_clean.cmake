file(REMOVE_RECURSE
  "CMakeFiles/fig10_multiprogrammed.dir/fig10_multiprogrammed.cc.o"
  "CMakeFiles/fig10_multiprogrammed.dir/fig10_multiprogrammed.cc.o.d"
  "fig10_multiprogrammed"
  "fig10_multiprogrammed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_multiprogrammed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
