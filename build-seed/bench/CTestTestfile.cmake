# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-seed/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(check_bench_json "/root/.pyenv/shims/python3" "/root/repo/scripts/check_bench_json.py" "/root/repo/build-seed/bench/fig09_free_blocks")
set_tests_properties(check_bench_json PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;49;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(timeline_smoke "/root/.pyenv/shims/python3" "/root/repo/scripts/timeline_smoke.py" "/root/repo/build-seed/bench/fig09_free_blocks" "/root/repo/build-seed/tools/contig_inspect" "/root/repo/bench/baselines/BENCH_fig09_free_blocks.json")
set_tests_properties(timeline_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;56;add_test;/root/repo/bench/CMakeLists.txt;0;")
