# Empty compiler generated dependencies file for micro_alloc_path.
# This may be replaced when dependencies are built.
