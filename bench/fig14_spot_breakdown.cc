/**
 * @file
 * Reproduces Fig. 14: the fraction of L2-TLB misses for which SpOT
 * made a correct prediction, a misprediction, or no prediction, with
 * CA paging active in both guest and host and the workloads running
 * consecutively in one VM.
 * Expected shape: correct predictions >99% for PageRank-like regular
 * workloads, mispredictions bounded by a few percent (hashjoin/svm),
 * no-predictions concentrated in svm (irregular scattered VMAs) and
 * bt (fragmented multi-array mappings).
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/bench_io.hh"
#include "core/report.hh"

using namespace contig;

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("fig14_spot_breakdown", argc, argv);
    XlatReplayOpts replay;
    replay.threads = out.xlatThreads();
    replay.chunkAccesses = out.xlatChunk();
    replay.traceIn = out.traceIn();
    replay.traceOut = out.traceOut();
    replay.ckptIn = out.ckptIn();
    replay.ckptOut = out.ckptOut();
    replay.ckptAtChunk = out.ckptAtChunk();

    Report rep("Fig. 14 — SpOT outcome breakdown per L2-TLB miss");
    rep.header({"workload", "correct", "mispredicted", "no-prediction",
                "walks"});

    VirtSystem sys(PolicyKind::Ca, PolicyKind::Ca, 7);
    for (const auto &name : paperWorkloads()) {
        auto wl = makeWorkload(name, {1.0, 7});
        Process &proc = sys.guest().createProcess(name);
        wl->setup(proc);
        auto r = runTranslation(*wl, &sys.vm(), XlatScheme::Spot,
                                ScaledDefaults::kAccessesPerRun, 99,
                                replay);
        const double w = r.stats.walks ? r.stats.walks : 1;
        rep.row({name,
                 Report::pct(r.stats.spotCorrect / w),
                 Report::pct(r.stats.spotMispredicted / w),
                 Report::pct(r.stats.spotNoPrediction / w),
                 std::to_string(r.stats.walks)});
        wl->teardown();
        sys.guest().exitProcess(proc);
    }
    out.add(rep);
    rep.print();

    std::printf("\npaper: correct >99%% (PageRank), mispredictions "
                "never more than ~4%% (hashjoin); svm/bt carry the "
                "no-prediction residual\n");
    out.write();
    return 0;
}
