file(REMOVE_RECURSE
  "libcontig.a"
)
