# Empty compiler generated dependencies file for table7_usl.
# This may be replaced when dependencies are built.
