#include <gtest/gtest.h>

#include <vector>

#include "base/serialize.hh"
#include "contig/analysis.hh"
#include "obs/attribution.hh"

using namespace contig;
using namespace contig::obs;

TEST(ContigClassIndex, ClassOfRunIsLog2Bucketed)
{
    EXPECT_EQ(ContigClassIndex::classOfRun(1), 0u);
    EXPECT_EQ(ContigClassIndex::classOfRun(2), 1u);
    EXPECT_EQ(ContigClassIndex::classOfRun(3), 1u);
    EXPECT_EQ(ContigClassIndex::classOfRun(4), 2u);
    EXPECT_EQ(ContigClassIndex::classOfRun(512), 9u);  // THP class
    EXPECT_EQ(ContigClassIndex::classOfRun(1023), 9u);
    // Caps at the last class no matter how large the run.
    EXPECT_EQ(ContigClassIndex::classOfRun(1ull << 40),
              kContigClasses - 1);
}

TEST(ContigClassIndex, ClassifyFindsContainingRun)
{
    std::vector<Seg> segs;
    segs.push_back(Seg{100, 0, 4});    // [100,104) -> class 2
    segs.push_back(Seg{1000, 0, 512}); // [1000,1512) -> class 9
    segs.push_back(Seg{50, 0, 1});     // [50,51) -> class 0
    const ContigClassIndex idx(segs);
    EXPECT_EQ(idx.runs(), 3u);
    EXPECT_EQ(idx.classify(100), 2u);
    EXPECT_EQ(idx.classify(103), 2u);
    EXPECT_EQ(idx.classify(104), 0u); // one past the run
    EXPECT_EQ(idx.classify(99), 0u);  // uncovered
    EXPECT_EQ(idx.classify(1000), 9u);
    EXPECT_EQ(idx.classify(1511), 9u);
    EXPECT_EQ(idx.classify(50), 0u); // covered, lone page = class 0
    EXPECT_EQ(idx.classify(0), 0u);
}

TEST(XlatAttribution, RecordAccumulatesByOutcomeAndClass)
{
    std::vector<Seg> segs{Seg{0, 0, 512}};
    auto idx = std::make_shared<const ContigClassIndex>(segs);
    XlatAttribution t("base_2d");
    t.setIndex(idx);
    t.record(XlatOutcome::FullWalk, 10, 200, 200);
    t.record(XlatOutcome::FullWalk, 11, 100, 100);
    t.record(XlatOutcome::TlbHit, 10000, 0, 0); // uncovered -> class 0
    const CostCell &walk = t.cell(
        static_cast<unsigned>(XlatOutcome::FullWalk), 9);
    EXPECT_EQ(walk.events, 2u);
    EXPECT_EQ(walk.cycles, 300u);
    EXPECT_EQ(walk.exposed, 300u);
    const CostCell &hit =
        t.cell(static_cast<unsigned>(XlatOutcome::TlbHit), 0);
    EXPECT_EQ(hit.events, 1u);
    EXPECT_EQ(t.events(), 3u);
    // Zero-exposed events never enter the exemplar reservoir.
    EXPECT_EQ(t.exemplars().size(), 2u);
    EXPECT_EQ(t.exemplars()[0].cycles, 200u); // hottest first
}

TEST(XlatAttribution, ExemplarReservoirIsBoundedAndSorted)
{
    XlatAttribution t("x");
    for (std::uint64_t i = 0; i < 100; ++i)
        t.record(XlatOutcome::FullWalk, i, i + 1, i + 1);
    const auto &ex = t.exemplars();
    ASSERT_EQ(ex.size(), XlatAttribution::kExemplarCapacity);
    // Top-K by cycles: 100 down to 100-K+1, descending.
    for (std::size_t i = 0; i < ex.size(); ++i)
        EXPECT_EQ(ex[i].cycles, 100u - i);
}

TEST(XlatAttribution, MergeIsOrderIndependent)
{
    // Two shards with interleaved heat; merging a-into-b and b-into-a
    // must produce identical surviving exemplar sets (the strict
    // total order guarantees it).
    XlatAttribution a("x"), b("x");
    for (std::uint64_t i = 0; i < 40; ++i) {
        a.record(XlatOutcome::FullWalk, 2 * i, 3 * i + 1, 3 * i + 1);
        b.record(XlatOutcome::FullWalk, 2 * i + 1, 2 * i + 1, 2 * i + 1);
    }
    XlatAttribution ab("x"), ba("x");
    ab.mergeFrom(a);
    ab.mergeFrom(b);
    ba.mergeFrom(b);
    ba.mergeFrom(a);
    ASSERT_EQ(ab.exemplars().size(), ba.exemplars().size());
    for (std::size_t i = 0; i < ab.exemplars().size(); ++i) {
        EXPECT_EQ(ab.exemplars()[i].vpn, ba.exemplars()[i].vpn);
        EXPECT_EQ(ab.exemplars()[i].cycles, ba.exemplars()[i].cycles);
    }
    EXPECT_EQ(ab.events(), 80u);
    const CostCell total = ab.outcomeTotal(
        static_cast<unsigned>(XlatOutcome::FullWalk));
    EXPECT_EQ(total.events, 80u);
}

TEST(XlatAttribution, SaveRestoreRoundtrip)
{
    XlatAttribution t("spot_2d");
    t.setChunk(7);
    for (std::uint64_t i = 0; i < 20; ++i)
        t.record(XlatOutcome::PscWalk, i, 50 + i, 50 + i);
    t.record(XlatOutcome::TlbHit, 5, 0, 0);

    Serializer s;
    t.save(s);
    Deserializer d(s.data().data(), s.size(), "test");
    XlatAttribution r("");
    r.restore(d);

    EXPECT_EQ(r.label(), "spot_2d");
    EXPECT_EQ(r.events(), t.events());
    ASSERT_EQ(r.exemplars().size(), t.exemplars().size());
    for (std::size_t i = 0; i < r.exemplars().size(); ++i) {
        EXPECT_EQ(r.exemplars()[i].vpn, t.exemplars()[i].vpn);
        EXPECT_EQ(r.exemplars()[i].chunk, t.exemplars()[i].chunk);
    }
    for (unsigned o = 0; o < kXlatOutcomes; ++o) {
        for (unsigned c = 0; c < kContigClasses; ++c) {
            const CostCell &x = t.cell(o, c);
            const CostCell &y = r.cell(o, c);
            EXPECT_EQ(x.events, y.events);
            EXPECT_EQ(x.cycles, y.cycles);
            EXPECT_EQ(x.exposed, y.exposed);
            EXPECT_EQ(x.hist.totalWeight(), y.hist.totalWeight());
            for (unsigned bkt = 0; bkt < x.hist.numBuckets(); ++bkt)
                EXPECT_EQ(x.hist.bucket(bkt), y.hist.bucket(bkt));
        }
    }
}

TEST(FaultAttribution, RecordAndMerge)
{
    FaultAttribution a, b;
    a.record(0, false, 0, 100); // anon base none
    a.record(0, true, 0, 5000); // anon huge none
    b.record(0, false, 1, 300); // anon base no_huge_block
    b.record(2, false, 0, 80);  // file base none
    a.mergeFrom(b);
    EXPECT_EQ(a.events(), 4u);
    EXPECT_EQ(a.cell(0, 1, 0).cycles, 5000u);
    EXPECT_EQ(a.cell(0, 0, 1).events, 1u);
    EXPECT_EQ(a.cell(2, 0, 0).events, 1u);
}

TEST(AttribRegistry, AbsorbMergesByLabelAndSkipsEmpty)
{
    AttribRegistry &reg = AttribRegistry::global();
    reg.reset();
    EXPECT_FALSE(reg.hasData());

    XlatAttribution empty("never");
    reg.absorbXlat(empty); // no events -> not registered
    EXPECT_FALSE(reg.hasData());

    XlatAttribution s0("base_2d"), s1("base_2d");
    s0.record(XlatOutcome::FullWalk, 1, 10, 10);
    s1.record(XlatOutcome::FullWalk, 2, 20, 20);
    reg.absorbXlat(s0);
    reg.absorbXlat(s1);
    ASSERT_TRUE(reg.hasData());
    ASSERT_EQ(reg.labels(), std::vector<std::string>{"base_2d"});
    const XlatAttribution *merged = reg.xlat("base_2d");
    ASSERT_NE(merged, nullptr);
    EXPECT_EQ(merged->events(), 2u);
    EXPECT_EQ(reg.xlat("nope"), nullptr);

    FaultAttribution f;
    f.record(1, false, 0, 42);
    reg.absorbFault(f);
    EXPECT_EQ(reg.fault().events(), 1u);
    reg.reset();
    EXPECT_FALSE(reg.hasData());
}

TEST(AttribRegistry, NamesAreStable)
{
    // JSON consumers (contig_report, check_bench_json) key on these.
    EXPECT_STREQ(xlatOutcomeName(XlatOutcome::TlbHit), "tlb_hit");
    EXPECT_STREQ(xlatOutcomeName(XlatOutcome::SegmentHit),
                 "segment_hit");
    EXPECT_STREQ(xlatOutcomeName(XlatOutcome::SpotHit), "spot_hit");
    EXPECT_STREQ(xlatOutcomeName(XlatOutcome::RangeHit), "range_hit");
    EXPECT_STREQ(xlatOutcomeName(XlatOutcome::PscWalk), "psc_walk");
    EXPECT_STREQ(xlatOutcomeName(XlatOutcome::FullWalk), "full_walk");
    EXPECT_STREQ(contigClassName(0), "4K");
    EXPECT_STREQ(contigClassName(9), "2M(THP)");
    EXPECT_STREQ(contigClassName(kContigClasses - 1), ">=128M");
    EXPECT_STREQ(faultKindName(0), "anon");
    EXPECT_STREQ(faultFallName(1), "no_huge_block");
}
