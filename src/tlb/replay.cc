#include "tlb/replay.hh"

#include <algorithm>
#include <string>

#include "base/logging.hh"
#include "base/sync.hh"
#include "obs/attribution.hh"
#include "obs/trace.hh"
#include "base/serialize.hh"

namespace contig
{

ReplayEngine::ReplayEngine(const XlatConfig &cfg, unsigned threads,
                           const PageTable &pt)
    : threads_(threads ? threads : 1),
      chunkPhase_(obs::Phase::bind(obs::MetricRegistry::global(),
                                   "xlat.chunk"))
{
    initShards(cfg, pt, nullptr);
}

ReplayEngine::ReplayEngine(const XlatConfig &cfg, unsigned threads,
                           const PageTable &guest_pt,
                           const VirtualMachine &vm)
    : threads_(threads ? threads : 1),
      chunkPhase_(obs::Phase::bind(obs::MetricRegistry::global(),
                                   "xlat.chunk"))
{
    initShards(cfg, guest_pt, &vm);
}

void
ReplayEngine::initShards(const XlatConfig &cfg, const PageTable &pt,
                         const VirtualMachine *vm)
{
    // The engine times chunks itself (on the replay thread); shard
    // phase timers would race on the global summaries when threaded,
    // and would double-count when not.
    XlatConfig shard_cfg = cfg;
    shard_cfg.phaseTimers = false;
    shards_.reserve(threads_);
    for (unsigned i = 0; i < threads_; ++i) {
        if (vm)
            shards_.push_back(std::make_unique<TranslationSim>(
                shard_cfg, pt, *vm));
        else
            shards_.push_back(
                std::make_unique<TranslationSim>(shard_cfg, pt));
    }
    loads_ = std::vector<LoadSlot>(threads_);
    // Registered under "xlat" (not "xlat.replay") so the per-shard
    // load counters land next to the replay totals: the exported
    // names xlat.replay.* are unchanged and xlat.shard<i>.* joins
    // them for the imbalance view.
    metricSource_ = obs::MetricSource(
        obs::MetricRegistry::global(), "xlat",
        [this](obs::MetricSink &sink) {
            sink.counter("replay.chunks", chunks_);
            sink.counter("replay.accesses", accessesDone_);
            sink.gauge("replay.threads", threads_);
            for (unsigned i = 0; i < threads_; ++i) {
                const ShardLoad l = shardLoad(i);
                const std::string p = "shard" + std::to_string(i) + ".";
                sink.counter(p + "accesses", l.accesses);
                sink.counter(p + "busy_us", l.busyNs / 1000);
                sink.counter(p + "stall_us", l.stallNs / 1000);
                sink.counter(p + "wait_us", l.waitNs / 1000);
            }
        });
    if (threads_ > 1) {
        skewSummary_ =
            &obs::MetricRegistry::global().summary("xlat.barrier.skew_us");
        obs::TraceSink &ts = obs::TraceSink::global();
        startWaitName_ = ts.intern("xlat.barrier.start");
        endWaitName_ = ts.intern("xlat.barrier.end");
        startWorkers();
    }
}

void
ReplayEngine::startWorkers()
{
    lanes_.resize(threads_);
    startBarrier_ = std::make_unique<std::barrier<>>(threads_ + 1);
    endBarrier_ = std::make_unique<std::barrier<>>(threads_ + 1);
    workers_.reserve(threads_);
    for (unsigned i = 0; i < threads_; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ReplayEngine::~ReplayEngine()
{
    if (!workers_.empty()) {
        stop_ = true;
        startBarrier_->arrive_and_wait();
        for (std::thread &t : workers_)
            t.join();
    }
}

void
ReplayEngine::setSegments(const std::vector<Seg> &segs)
{
    for (auto &shard : shards_)
        shard->setSegments(segs);
}

void
ReplayEngine::setContigIndex(
    std::shared_ptr<const obs::ContigClassIndex> idx)
{
    for (auto &shard : shards_)
        shard->setContigIndex(idx);
}

bool
ReplayEngine::attribEnabled() const
{
    return shards_[0]->attrib() != nullptr;
}

obs::XlatAttribution
ReplayEngine::attribRollup() const
{
    const obs::XlatAttribution *first = shards_[0]->attrib();
    obs::XlatAttribution sum(first ? first->label() : std::string());
    for (const auto &shard : shards_)
        if (const obs::XlatAttribution *a = shard->attrib())
            sum.mergeFrom(*a);
    return sum;
}

unsigned
ReplayEngine::shardOf(Vpn vpn, unsigned threads)
{
    // splitmix64 finalizer: adjacent pages spread across shards, and
    // the partition is a pure function of (vpn, threads).
    std::uint64_t key = vpn + 0x9E3779B97F4A7C15ull;
    key = (key ^ (key >> 30)) * 0xBF58476D1CE4E5B9ull;
    key = (key ^ (key >> 27)) * 0x94D049BB133111EBull;
    key ^= key >> 31;
    return static_cast<unsigned>(key % threads);
}

void
ReplayEngine::workerLoop(unsigned id)
{
    // Bind a lane so the worker's trace events land on their own
    // Chrome-trace tid (replay shards never fault, so reusing the
    // per-CPU cache id space is safe).
    ThisCpu::Scope lane(static_cast<int>(id));
    obs::TraceSink &ts = obs::TraceSink::global();
    std::vector<MemAccess> &mine = lanes_[id];
    LoadSlot &load = loads_[id];
    for (;;) {
        const std::uint64_t w0 = ts.nowNs();
        startBarrier_->arrive_and_wait();
        const std::uint64_t t0 = ts.nowNs();
        load.waitNs.fetch_add(t0 - w0, std::memory_order_relaxed);
#if CONTIG_TRACING
        if (ts.wants(obs::kCatSync))
            ts.recordSpan(startWaitName_, w0, t0 - w0, id,
                          obs::TraceEventKind::BarrierWait);
#endif
        if (stop_)
            return;
        mine.clear();
        for (std::size_t i = 0; i < chunkN_; ++i)
            if (shardOf(chunk_[i].va.pageNumber(), threads_) == id)
                mine.push_back(chunk_[i]);
        shards_[id]->accessChunk(mine.data(), mine.size());
        const std::uint64_t t1 = ts.nowNs();
        load.accesses.fetch_add(mine.size(), std::memory_order_relaxed);
        load.busyNs.fetch_add(t1 - t0, std::memory_order_relaxed);
        load.lastBusyNs.store(t1 - t0, std::memory_order_relaxed);
        endBarrier_->arrive_and_wait();
        const std::uint64_t t2 = ts.nowNs();
        load.stallNs.fetch_add(t2 - t1, std::memory_order_relaxed);
#if CONTIG_TRACING
        if (ts.wants(obs::kCatSync))
            ts.recordSpan(endWaitName_, t1, t2 - t1, id,
                          obs::TraceEventKind::BarrierWait);
#endif
    }
}

void
ReplayEngine::replayChunk(const MemAccess *a, std::size_t n)
{
    {
        // Single-shard runs attribute the modelled walk cycles to the
        // phase as TranslationSim did; threaded runs record wall time
        // only (shard cycle counters advance concurrently).
        obs::ScopedPhase timer(
            chunkPhase_,
            threads_ == 1 ? &shards_[0]->stats().walkCycles : nullptr);
        // Stamp the chunk ordinal into the shards' attribution
        // exemplars (no-op per shard when --attrib is off). Main owns
        // all shard state here: workers are parked at the start
        // barrier.
        for (auto &shard : shards_)
            shard->noteChunk(chunks_);
        if (threads_ == 1) {
            const std::uint64_t t0 = obs::TraceSink::global().nowNs();
            shards_[0]->accessChunk(a, n);
            LoadSlot &load = loads_[0];
            load.accesses.fetch_add(n, std::memory_order_relaxed);
            load.busyNs.fetch_add(obs::TraceSink::global().nowNs() - t0,
                                  std::memory_order_relaxed);
        } else {
            chunk_ = a;
            chunkN_ = n;
            startBarrier_->arrive_and_wait();
            endBarrier_->arrive_and_wait();
            // Workers are past their replay section; their lastBusyNs
            // stores happened-before the barrier completed. The
            // max-min spread is the wall time the fastest shard spent
            // waiting on the slowest — per-chunk barrier skew.
            std::uint64_t lo = ~std::uint64_t{0}, hi = 0;
            for (LoadSlot &l : loads_) {
                const std::uint64_t b =
                    l.lastBusyNs.load(std::memory_order_relaxed);
                lo = std::min(lo, b);
                hi = std::max(hi, b);
            }
            skewSummary_->add(static_cast<double>(hi - lo) / 1000.0);
        }
    }
    ++chunks_;
    accessesDone_ += n;
    CONTIG_TRACE(obs::TraceEventKind::ReplayChunk, chunks_ - 1, n,
                 mergedStats().walks);
}

XlatStats
ReplayEngine::mergedStats() const
{
    XlatStats sum;
    for (const auto &shard : shards_) {
        const XlatStats &s = shard->stats();
        sum.accesses += s.accesses;
        sum.l1Hits += s.l1Hits;
        sum.l2Hits += s.l2Hits;
        sum.walks += s.walks;
        sum.walkRefs += s.walkRefs;
        sum.walkCycles += s.walkCycles;
        sum.exposedCycles += s.exposedCycles;
        sum.spotCorrect += s.spotCorrect;
        sum.spotMispredicted += s.spotMispredicted;
        sum.spotNoPrediction += s.spotNoPrediction;
        sum.rangeHits += s.rangeHits;
        sum.segmentHits += s.segmentHits;
    }
    return sum;
}

ReplayEngine::ShardLoad
ReplayEngine::shardLoad(unsigned i) const
{
    const LoadSlot &l = loads_[i];
    ShardLoad out;
    out.accesses = l.accesses.load(std::memory_order_relaxed);
    out.busyNs = l.busyNs.load(std::memory_order_relaxed);
    out.stallNs = l.stallNs.load(std::memory_order_relaxed);
    out.waitNs = l.waitNs.load(std::memory_order_relaxed);
    return out;
}

std::optional<SpotStats>
ReplayEngine::mergedSpotStats() const
{
    if (!shards_[0]->spot())
        return std::nullopt;
    SpotStats sum;
    for (const auto &shard : shards_) {
        const SpotStats &s = shard->spot()->stats();
        sum.lookups += s.lookups;
        sum.correct += s.correct;
        sum.mispredicted += s.mispredicted;
        sum.noPrediction += s.noPrediction;
        sum.fills += s.fills;
        sum.fillsBlockedByBits += s.fillsBlockedByBits;
        sum.offsetReplacements += s.offsetReplacements;
    }
    return sum;
}


void
ReplayEngine::saveState(Serializer &s) const
{
    const std::size_t sec = s.beginSection(sectionTag('R', 'E', 'N', 'G'));
    s.u32(threads_);
    s.u64(chunks_);
    s.u64(accessesDone_);
    for (unsigned i = 0; i < threads_; ++i) {
        // Per-shard access counts are deterministic (the vpn-hash
        // partition); the wall-clock busy/stall/wait slots are not
        // checkpointed and restart at zero.
        s.u64(loads_[i].accesses.load(std::memory_order_relaxed));
        shards_[i]->saveState(s);
    }
    s.endSection(sec);
}

void
ReplayEngine::restoreState(Deserializer &d)
{
    d.expectSection(sectionTag('R', 'E', 'N', 'G'), "replay_engine");
    const unsigned threads = d.u32();
    if (threads != threads_)
        fatal("checkpoint was taken with --xlat-threads %u, this run"
              " has %u — shard partitions would not line up",
              threads, threads_);
    chunks_ = d.u64();
    accessesDone_ = d.u64();
    for (unsigned i = 0; i < threads_; ++i) {
        loads_[i].accesses.store(d.u64(), std::memory_order_relaxed);
        shards_[i]->restoreState(d);
    }
}

} // namespace contig
