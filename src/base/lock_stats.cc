#include "base/lock_stats.hh"

#include <deque>
#include <map>
#include <mutex>

namespace contig {

unsigned
LockSite::stripeIndex() noexcept
{
    // Threads grab a stripe slot on first use; a plain round-robin
    // ticket keeps the main thread and up to kStripes-1 workers on
    // private cache lines without needing ThisCpu (which lives a
    // header above us).
    static std::atomic<unsigned> next{0};
    thread_local const unsigned idx =
        next.fetch_add(1, std::memory_order_relaxed) % kStripes;
    return idx;
}

// Registration is rare (kernel/policy construction) and export is
// cold, so a plain std::mutex around a name->site map is plenty. The
// deque keeps LockSite addresses stable across growth.
struct LockStatsRegistry::Impl {
    std::mutex mu;
    std::deque<LockSite> storage;
    std::map<std::string, LockSite *, std::less<>> byName;
};

LockStatsRegistry &
LockStatsRegistry::global()
{
    static LockStatsRegistry reg;
    return reg;
}

LockStatsRegistry::Impl &
LockStatsRegistry::impl() const
{
    static Impl impl;
    return impl;
}

LockSite &
LockStatsRegistry::site(std::string_view name)
{
    Impl &im = impl();
    std::lock_guard<std::mutex> g(im.mu);
    auto it = im.byName.find(name);
    if (it != im.byName.end())
        return *it->second;
    im.storage.emplace_back(std::string(name));
    LockSite &s = im.storage.back();
    im.byName.emplace(s.name(), &s);
    return s;
}

std::vector<const LockSite *>
LockStatsRegistry::sites() const
{
    Impl &im = impl();
    std::lock_guard<std::mutex> g(im.mu);
    std::vector<const LockSite *> out;
    out.reserve(im.byName.size());
    for (const auto &[name, site] : im.byName)
        out.push_back(site);
    return out;
}

void
LockStatsRegistry::resetCounters()
{
    Impl &im = impl();
    std::lock_guard<std::mutex> g(im.mu);
    for (LockSite &s : im.storage)
        s.reset();
}

} // namespace contig
