/**
 * @file
 * The address-translation simulator: replays a (pc, gVA) access
 * stream through the TLB hierarchy and, on L2 misses, through the
 * configured translation scheme — plain walks, SpOT speculation,
 * a vRMM range TLB, or Direct Segments. Produces the event counts
 * (walks, correct/mis/no predictions, range hits) that the Table IV
 * performance model converts into the overheads of Fig. 13.
 */

#ifndef CONTIG_TLB_TRANSLATION_SIM_HH
#define CONTIG_TLB_TRANSLATION_SIM_HH

#include <memory>
#include <optional>

#include "obs/metrics.hh"
#include "obs/phase.hh"
#include "ranges/ranges.hh"
#include "spot/spot.hh"
#include "tlb/tlb.hh"
#include "tlb/walker.hh"

namespace contig
{

class Serializer;
class Deserializer;

namespace obs
{
class ContigClassIndex;
class XlatAttribution;
} // namespace obs

/** One memory instruction execution. */
struct MemAccess
{
    Addr pc = 0;
    Gva va{0};
};

/** Which accelerator sits on the L2-miss path. */
enum class XlatScheme : std::uint8_t
{
    Base,  //!< plain page walks
    Spot,  //!< SpOT speculation
    Rmm,   //!< vRMM range TLB
    Ds,    //!< Direct Segments dual mode
};

/**
 * Which replay inner loop runs. Both produce bit-identical
 * statistics, scheme state and checkpoints (pinned by the engine
 * golden-equivalence test); only wall-clock time differs, which is
 * what the micro_xlat_scaling ratio gate measures.
 */
enum class XlatEngine : std::uint8_t
{
    /**
     * The historical loop: out-of-line per-way scalar probes and
     * per-access statistics writes. Retained as the golden reference
     * and the denominator of the SoA/SIMD speedup.
     */
    Reference,
    /**
     * The SoA loop: vpn lane precomputed per chunk, inline
     * SIMD-capable set probes, hit counters sunk into chunk-local
     * accumulators that flush once per chunk.
     */
    Batched,
};

/** Aggregated simulation results. */
struct XlatStats
{
    std::uint64_t accesses = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t walks = 0;          //!< L2 misses that walked
    std::uint64_t walkRefs = 0;
    Cycles walkCycles = 0;            //!< raw walk cost (before hiding)
    Cycles exposedCycles = 0;         //!< translation cost after scheme
    /** SpOT outcome counts (Fig. 14). */
    std::uint64_t spotCorrect = 0;
    std::uint64_t spotMispredicted = 0;
    std::uint64_t spotNoPrediction = 0;
    /** vRMM / DS event counts. */
    std::uint64_t rangeHits = 0;
    std::uint64_t segmentHits = 0;

    double
    avgWalkCycles() const
    {
        return walks ? static_cast<double>(walkCycles) / walks : 0.0;
    }
};

/** Everything the simulator needs for one configuration. */
struct XlatConfig
{
    TlbHierConfig tlb;
    WalkerConfig walker;
    XlatScheme scheme = XlatScheme::Base;
    XlatEngine engine = XlatEngine::Batched;
    SpotConfig spot;
    RangeTlbConfig rangeTlb;
    /**
     * Record the per-chunk phase timer ("xlat.chunk"). The ReplayEngine
     * turns this off for its shards when running threaded — the global
     * phase summaries are not synchronized — and records chunk wall
     * time itself at the barriers instead.
     */
    bool phaseTimers = true;
};

/**
 * One translation pipeline instance. Construct with a native page
 * table or a (guest PT, VM) pair, plus optional scheme state.
 */
class TranslationSim
{
  public:
    /** Native. */
    TranslationSim(const XlatConfig &cfg, const PageTable &pt);

    /** Virtualized. */
    TranslationSim(const XlatConfig &cfg, const PageTable &guest_pt,
                   const VirtualMachine &vm);

    /** Folds the attribution table into AttribRegistry::global(). */
    ~TranslationSim();

    /**
     * Provide the extracted 2-D segments (required for Rmm, and for
     * Ds if no explicit segment is set — the largest segment becomes
     * the direct segment).
     */
    void setSegments(std::vector<Seg> segs);

    /** Simulate one access. */
    void access(const MemAccess &a);

    /**
     * Simulate a contiguous chunk of accesses. Semantically a loop of
     * access() — statistics and scheme state evolve identically — but
     * the scheme/virtualization dispatch is resolved once for the
     * whole chunk and the phase timer brackets the chunk instead of
     * every walk. This is the replay engine's inner loop.
     */
    void accessChunk(const MemAccess *a, std::size_t n);

    const XlatStats &stats() const { return stats_; }

    /**
     * True when the probe structures run the AVX2 kernels: Batched
     * engine, SIMD compiled in, CPU capable, not forced scalar.
     */
    bool simdActive() const;

    const Walker &walker() const { return *walker_; }
    const SpotEngine *spot() const { return spot_.get(); }
    const RangeTlb *rangeTlb() const { return rangeTlb_.get(); }

    /**
     * Cost attribution (null unless AttribRegistry::enabled() when
     * the simulator was built). The index classifies each event's vpn
     * into a contiguity class; noteChunk stamps the replay chunk id
     * into exemplars so hot outliers link back to --trace streams.
     */
    const obs::XlatAttribution *attrib() const { return attrib_.get(); }
    void setContigIndex(std::shared_ptr<const obs::ContigClassIndex> idx);
    void noteChunk(std::uint64_t chunk);

    /**
     * Report pipeline metrics: access/hit/walk counters, the L2-miss
     * latency summary, and the TLB/walker/SpOT component groups.
     * Registered with MetricRegistry::global() under "xlat" for the
     * simulator's lifetime.
     */
    void collectMetrics(obs::MetricSink &sink) const;

    /**
     * Checkpoint the full pipeline state: scheme identity (verified
     * on restore), stats, the L2-miss latency summary, TLB
     * hierarchy, walker caches, SpOT table and range TLB. The direct
     * segments / range table are not serialized — setSegments() on
     * the resumed engine rebuilds them from the (verified-identical)
     * kernel state.
     */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

  private:
    void init();

    /**
     * The monomorphized inner loops (scheme + virtualization fixed):
     * the retained per-access reference and the batched SoA loop.
     */
    template <XlatScheme S, bool Virt>
    void runChunkRef(const MemAccess *a, std::size_t n);
    template <XlatScheme S, bool Virt>
    void runChunkBatched(const MemAccess *a, std::size_t n);

    /** Slow path shared by the batched loop: one L2 miss. */
    template <XlatScheme S, bool Virt>
    void missPath(const MemAccess &a, Vpn vpn);

    XlatConfig cfg_;
    TlbHierarchy tlb_;
    std::unique_ptr<Walker> walker_;
    std::unique_ptr<SpotEngine> spot_;
    std::unique_ptr<RangeTable> rangeTable_;
    std::unique_ptr<RangeTlb> rangeTlb_;
    /**
     * DS dual direct mode: the virtual spans covered directly
     * (merged from the mapped segments — the primary region the
     * segment register pair covers when the VM boots).
     */
    std::vector<DirectSegment> segments_;
    XlatStats stats_;
    /** Batched engine: chunk-sized vpn lane, reused across chunks. */
    std::vector<Vpn> vpnLane_;
    /** Exposed translation cycles per L2 miss (walk + scheme effects). */
    Summary l2MissLatency_;
    obs::Phase chunkPhase_;
    /**
     * Per-event cost attribution; null when the switch is off.
     * Declared before metricSource_: the source's destructor absorbs
     * a final collectMetrics() snapshot, which reads this table.
     */
    std::unique_ptr<obs::XlatAttribution> attrib_;
    obs::MetricSource metricSource_;
};

} // namespace contig

#endif // CONTIG_TLB_TRANSLATION_SIM_HH
