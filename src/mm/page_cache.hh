/**
 * @file
 * A minimal page cache: files whose pages are allocated on first read
 * (with readahead) and outlive the processes mapping them — the
 * long-lived allocations the paper identifies as a fragmentation
 * source that CA paging tames by allocating them contiguously
 * (§III-C, "Supported faults"). Each file is the `struct
 * address_space` analogue and carries its own CA Offset attribute.
 */

#ifndef CONTIG_MM_PAGE_CACHE_HH
#define CONTIG_MM_PAGE_CACHE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "base/types.hh"

namespace contig
{

class Kernel;

/** Pages fetched per readahead batch. */
constexpr std::uint64_t kReadaheadPages = 16;

/**
 * One cached file: a sparse array of page-cache frames plus CA
 * paging's per-file Offset.
 */
class File
{
  public:
    File(std::uint32_t id, std::uint64_t size_pages)
        : id_(id), pages_(size_pages, kInvalidPfn)
    {}

    std::uint32_t id() const { return id_; }
    std::uint64_t sizePages() const { return pages_.size(); }

    bool
    isCached(std::uint64_t file_page) const
    {
        return pages_[file_page] != kInvalidPfn;
    }

    Pfn frameFor(std::uint64_t file_page) const
    { return pages_[file_page]; }

    void
    install(std::uint64_t file_page, Pfn pfn)
    {
        pages_[file_page] = pfn;
    }

    void evict(std::uint64_t file_page) { pages_[file_page] = kInvalidPfn; }

    /** CA paging metadata: offset = file_page - pfn for the file's run. */
    std::optional<std::int64_t> caOffsetPages;

    std::uint64_t cachedPages() const;

  private:
    std::uint32_t id_;
    std::vector<Pfn> pages_;
};

/**
 * The kernel's page cache: owns the files. Cache misses are filled by
 * the FaultEngine (readahead-window fills, placement steered by the
 * active policy); eviction lives here.
 */
class PageCache
{
  public:
    File &createFile(std::uint64_t size_pages);

    File &file(std::uint32_t id);

    /** Drop every cached page of every file, freeing the frames. */
    void dropCaches(Kernel &kernel);

    std::size_t fileCount() const { return files_.size(); }

  private:
    std::vector<std::unique_ptr<File>> files_;
};

} // namespace contig

#endif // CONTIG_MM_PAGE_CACHE_HH
