file(REMOVE_RECURSE
  "CMakeFiles/contigsim.dir/contigsim.cpp.o"
  "CMakeFiles/contigsim.dir/contigsim.cpp.o.d"
  "contigsim"
  "contigsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contigsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
