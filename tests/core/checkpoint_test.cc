/**
 * @file
 * Checkpoint/restore: a saved TranslationSim / ReplayEngine resumes
 * byte-identically, the .ckpt container round-trips with its kernel
 * verification blobs, and every mismatch (geometry, kernel state,
 * corruption) dies loudly instead of resuming a wrong simulation.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "base/serialize.hh"
#include "contig/analysis.hh"
#include "core/checkpoint.hh"
#include "core/config.hh"
#include "mm/kernel.hh"
#include "tlb/replay.hh"

using namespace contig;

namespace
{

std::string
tmpPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

struct TmpFile
{
    explicit TmpFile(std::string p) : path(std::move(p)) {}
    ~TmpFile() { std::remove(path.c_str()); }
    std::string path;
};

struct CheckpointTest : public ::testing::Test
{
    CheckpointTest()
        : kernel(
              [] {
                  KernelConfig cfg;
                  cfg.phys.bytesPerNode = 256ull << 20;
                  cfg.phys.numNodes = 1;
                  return cfg;
              }(),
              std::make_unique<DefaultThpPolicy>()),
          proc(kernel.createProcess("c"))
    {
        vma = &proc.mmap(64 * kHugeSize);
        proc.touchRange(vma->start(), vma->bytes());
        for (Vpn v = vma->start().pageNumber();
             v < vma->start().pageNumber() + vma->pages(); v += 512)
            proc.pageTable().setContigBit(v, true);
    }

    XlatConfig
    config(XlatScheme scheme)
    {
        XlatConfig cfg;
        cfg.tlb = ScaledDefaults::tlb();
        cfg.walker = ScaledDefaults::walker();
        cfg.scheme = scheme;
        cfg.spot = ScaledDefaults::spot();
        cfg.rangeTlb = ScaledDefaults::rangeTlb();
        return cfg;
    }

    std::vector<MemAccess>
    trace(std::size_t n, std::uint64_t seed)
    {
        Rng rng(seed);
        std::vector<MemAccess> t(n);
        for (auto &a : t)
            a = {0x400000 + (rng.below(8) << 3),
                 vma->start() + (rng.below(vma->bytes()) & ~7ull)};
        return t;
    }

    Kernel kernel;
    Process &proc;
    Vma *vma = nullptr;
};

void
expectSameStats(const XlatStats &a, const XlatStats &b)
{
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.l1Hits, b.l1Hits);
    EXPECT_EQ(a.l2Hits, b.l2Hits);
    EXPECT_EQ(a.walks, b.walks);
    EXPECT_EQ(a.walkRefs, b.walkRefs);
    EXPECT_EQ(a.walkCycles, b.walkCycles);
    EXPECT_EQ(a.exposedCycles, b.exposedCycles);
    EXPECT_EQ(a.spotCorrect, b.spotCorrect);
    EXPECT_EQ(a.spotMispredicted, b.spotMispredicted);
    EXPECT_EQ(a.spotNoPrediction, b.spotNoPrediction);
    EXPECT_EQ(a.rangeHits, b.rangeHits);
    EXPECT_EQ(a.segmentHits, b.segmentHits);
}

} // namespace

TEST_F(CheckpointTest, TranslationSimResumesByteIdentically)
{
    // Run the full stream on sim A. Run half on sim B, snapshot,
    // restore into a fresh sim C over the same page table, run the
    // second half there: C must land on A's exact counters — the
    // warmed TLC/SpOT/PSC state carried over, not just the totals.
    for (XlatScheme scheme :
         {XlatScheme::Base, XlatScheme::Spot, XlatScheme::Rmm}) {
        const auto t = trace(20000, 3);
        const std::size_t half = t.size() / 2;
        const auto segs = extractSegs(proc.pageTable());

        TranslationSim a(config(scheme), proc.pageTable());
        a.setSegments(segs);
        a.accessChunk(t.data(), t.size());

        TranslationSim b(config(scheme), proc.pageTable());
        b.setSegments(segs);
        b.accessChunk(t.data(), half);
        Serializer s;
        b.saveState(s);

        TranslationSim c(config(scheme), proc.pageTable());
        c.setSegments(segs);
        Deserializer d(s.data().data(), s.size(), "test snapshot");
        c.restoreState(d);
        c.accessChunk(t.data() + half, t.size() - half);

        expectSameStats(a.stats(), c.stats());
    }
}

TEST_F(CheckpointTest, ReplayEngineResumesAcrossShardCounts)
{
    for (unsigned threads : {1u, 3u}) {
        const auto t = trace(16384, 5);
        constexpr std::size_t kChunk = 2048;

        ReplayEngine a(config(XlatScheme::Spot), threads,
                       proc.pageTable());
        for (std::size_t off = 0; off < t.size(); off += kChunk)
            a.replayChunk(&t[off], std::min(kChunk, t.size() - off));

        ReplayEngine b(config(XlatScheme::Spot), threads,
                       proc.pageTable());
        for (std::size_t off = 0; off < t.size() / 2; off += kChunk)
            b.replayChunk(&t[off], kChunk);
        Serializer s;
        b.saveState(s);

        ReplayEngine c(config(XlatScheme::Spot), threads,
                       proc.pageTable());
        Deserializer d(s.data().data(), s.size(), "test snapshot");
        c.restoreState(d);
        for (std::size_t off = t.size() / 2; off < t.size();
             off += kChunk)
            c.replayChunk(&t[off], std::min(kChunk, t.size() - off));

        expectSameStats(a.mergedStats(), c.mergedStats());
        EXPECT_EQ(a.chunks(), c.chunks());
        EXPECT_EQ(a.accesses(), c.accesses());
        for (unsigned i = 0; i < threads; ++i)
            EXPECT_EQ(a.shardLoad(i).accesses, c.shardLoad(i).accesses)
                << "shard " << i;
    }
}

TEST_F(CheckpointTest, FileRoundTripsWithKernelVerification)
{
    const auto t = trace(8192, 7);
    ReplayEngine engine(config(XlatScheme::Spot), 2, proc.pageTable());
    engine.replayChunk(t.data(), 4096);

    CkptMeta meta;
    meta.traceDigest = 0xDEADBEEF;
    meta.chunk = 1;
    meta.accesses = 4096;
    TmpFile f(tmpPath("ckpt_roundtrip.ckpt"));
    Checkpoint::write(f.path, meta, engine, {&kernel});

    Checkpoint ck(f.path);
    EXPECT_EQ(ck.meta().traceDigest, 0xDEADBEEFu);
    EXPECT_EQ(ck.meta().chunk, 1u);
    EXPECT_EQ(ck.meta().accesses, 4096u);

    // Restore into a fresh engine (kernel untouched → verification
    // passes) and finish the stream; a reference engine that never
    // checkpointed must agree.
    ReplayEngine resumed(config(XlatScheme::Spot), 2, proc.pageTable());
    ck.restore(resumed, {&kernel});
    resumed.replayChunk(t.data() + 4096, 4096);

    ReplayEngine ref(config(XlatScheme::Spot), 2, proc.pageTable());
    ref.replayChunk(t.data(), 4096);
    ref.replayChunk(t.data() + 4096, 4096);
    expectSameStats(ref.mergedStats(), resumed.mergedStats());
}

TEST_F(CheckpointTest, DeathOnKernelStateMismatch)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const auto t = trace(4096, 9);
    ReplayEngine engine(config(XlatScheme::Base), 1, proc.pageTable());
    engine.replayChunk(t.data(), t.size());

    CkptMeta meta;
    TmpFile f(tmpPath("ckpt_mismatch.ckpt"));
    Checkpoint::write(f.path, meta, engine, {&kernel});

    // Mutate kernel state after the snapshot: the resume-time rebuild
    // would not reproduce it, so restore must refuse.
    proc.mmap(kHugeSize);
    Checkpoint ck(f.path);
    ReplayEngine resumed(config(XlatScheme::Base), 1, proc.pageTable());
    EXPECT_DEATH(ck.restore(resumed, {&kernel}),
                 "differs from the snapshot");
}

TEST_F(CheckpointTest, DeathOnShardCountMismatch)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const auto t = trace(4096, 11);
    ReplayEngine engine(config(XlatScheme::Base), 2, proc.pageTable());
    engine.replayChunk(t.data(), t.size());
    Serializer s;
    engine.saveState(s);

    ReplayEngine other(config(XlatScheme::Base), 4, proc.pageTable());
    EXPECT_DEATH(
        {
            Deserializer d(s.data().data(), s.size(), "test snapshot");
            other.restoreState(d);
        },
        "xlat-threads");
}

TEST_F(CheckpointTest, DeathOnCorruptFile)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const auto t = trace(4096, 13);
    ReplayEngine engine(config(XlatScheme::Base), 1, proc.pageTable());
    engine.replayChunk(t.data(), t.size());

    CkptMeta meta;
    TmpFile f(tmpPath("ckpt_corrupt.ckpt"));
    Checkpoint::write(f.path, meta, engine, {&kernel});

    // Flip a byte in the middle: the trailing CRC catches it.
    std::FILE *fp = std::fopen(f.path.c_str(), "r+b");
    ASSERT_NE(fp, nullptr);
    std::fseek(fp, 100, SEEK_SET);
    const int c = std::fgetc(fp);
    std::fseek(fp, 100, SEEK_SET);
    std::fputc(c ^ 0x20, fp);
    std::fclose(fp);
    EXPECT_DEATH({ Checkpoint ck(f.path); }, "CRC mismatch");

    EXPECT_DEATH({ Checkpoint ck("/nonexistent/nope.ckpt"); },
                 "cannot open");
}
