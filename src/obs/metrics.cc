#include "obs/metrics.hh"

#include <algorithm>

#include "base/json.hh"
#include "base/logging.hh"

namespace contig
{
namespace obs
{

void
MetricSample::mergeFrom(const MetricSample &other)
{
    contig_assert(type == other.type,
                  "metric type mismatch while merging samples");
    switch (type) {
      case MetricType::Counter:
        counter += other.counter;
        break;
      case MetricType::Gauge:
        gauge += other.gauge;
        break;
      case MetricType::Summary:
        summary.merge(other.summary);
        break;
      case MetricType::Histogram:
        if (buckets.size() < other.buckets.size())
            buckets.resize(other.buckets.size(), 0);
        for (std::size_t i = 0; i < other.buckets.size(); ++i)
            buckets[i] += other.buckets[i];
        break;
    }
}

MetricSample &
MetricSink::at(std::string_view name, MetricType type)
{
    std::string full = prefix_;
    full += name;
    auto it = samples_.find(full);
    if (it == samples_.end()) {
        it = samples_.emplace(std::move(full), MetricSample{}).first;
        it->second.type = type;
    } else {
        contig_assert(it->second.type == type,
                      "metric '%s' reported with two types",
                      it->first.c_str());
    }
    return it->second;
}

void
MetricSink::counter(std::string_view name, std::uint64_t v)
{
    at(name, MetricType::Counter).counter += v;
}

void
MetricSink::gauge(std::string_view name, double v)
{
    at(name, MetricType::Gauge).gauge += v;
}

void
MetricSink::summary(std::string_view name, const Summary &s)
{
    at(name, MetricType::Summary).summary.merge(s);
}

void
MetricSink::histogram(std::string_view name, const Log2Histogram &h)
{
    MetricSample &sample = at(name, MetricType::Histogram);
    if (sample.buckets.size() < h.numBuckets())
        sample.buckets.resize(h.numBuckets(), 0);
    for (unsigned i = 0; i < h.numBuckets(); ++i)
        sample.buckets[i] += h.bucket(i);
}

MetricSink::Scope::Scope(MetricSink &sink, std::string_view prefix)
    : sink_(sink), savedLen_(sink.prefix_.size())
{
    sink_.prefix_ += prefix;
    sink_.prefix_ += '.';
}

MetricSink::Scope::~Scope()
{
    sink_.prefix_.resize(savedLen_);
}

MetricRegistry &
MetricRegistry::global()
{
    static MetricRegistry instance;
    return instance;
}

namespace
{

MetricSample &
ownedSlot(SampleMap &owned, std::string_view name, MetricType type)
{
    auto it = owned.find(name);
    if (it == owned.end()) {
        it = owned.emplace(std::string(name), MetricSample{}).first;
        it->second.type = type;
    } else {
        contig_assert(it->second.type == type,
                      "owned metric '%s' requested with two types",
                      it->first.c_str());
    }
    return it->second;
}

} // namespace

std::uint64_t &
MetricRegistry::counter(std::string_view name)
{
    return ownedSlot(owned_, name, MetricType::Counter).counter;
}

double &
MetricRegistry::gauge(std::string_view name)
{
    return ownedSlot(owned_, name, MetricType::Gauge).gauge;
}

Summary &
MetricRegistry::summary(std::string_view name)
{
    return ownedSlot(owned_, name, MetricType::Summary).summary;
}

Log2Histogram &
MetricRegistry::histogram(std::string_view name)
{
    // Owned histograms live as real Log2Histogram objects in a side
    // table (so callers get the full add() API); snapshot() converts
    // them to bucket vectors.
    auto it = ownedHists_.find(name);
    if (it == ownedHists_.end()) {
        contig_assert(owned_.find(name) == owned_.end(),
                      "owned metric '%s' requested with two types",
                      std::string(name).c_str());
        it = ownedHists_.emplace(std::string(name), Log2Histogram{}).first;
    }
    return it->second;
}

MetricRegistry::SourceId
MetricRegistry::addSource(std::string prefix, CollectFn fn)
{
    const SourceId id = nextSourceId_++;
    sources_.push_back({id, std::move(prefix), std::move(fn)});
    return id;
}

void
MetricRegistry::removeSource(SourceId id, bool absorb)
{
    auto it = std::find_if(sources_.begin(), sources_.end(),
                           [&](const Source &s) { return s.id == id; });
    if (it == sources_.end())
        return;
    if (absorb && it->fn) {
        MetricSink sink;
        MetricSink::Scope scope(sink, it->prefix);
        it->fn(sink);
        for (const auto &[name, sample] : sink.samples())
            absorbSample(name, sample);
    }
    sources_.erase(it);
}

void
MetricRegistry::absorbSample(const std::string &name,
                             const MetricSample &sample)
{
    auto it = owned_.find(name);
    if (it == owned_.end()) {
        owned_.emplace(name, sample);
        return;
    }
    it->second.mergeFrom(sample);
}

void
MetricRegistry::collectInto(MetricSink &sink) const
{
    for (const Source &src : sources_) {
        MetricSink::Scope scope(sink, src.prefix);
        src.fn(sink);
    }
}

SampleMap
MetricRegistry::snapshot() const
{
    MetricSink sink;
    collectInto(sink);
    SampleMap out = sink.samples();
    for (const auto &[name, sample] : owned_) {
        auto [it, inserted] = out.emplace(name, sample);
        if (!inserted)
            it->second.mergeFrom(sample);
    }
    for (const auto &[name, hist] : ownedHists_) {
        MetricSample sample;
        sample.type = MetricType::Histogram;
        sample.buckets.resize(hist.numBuckets());
        for (unsigned i = 0; i < hist.numBuckets(); ++i)
            sample.buckets[i] = hist.bucket(i);
        auto it = out.find(name);
        if (it == out.end())
            out.emplace(name, std::move(sample));
        else
            it->second.mergeFrom(sample);
    }
    return out;
}

void
MetricRegistry::writeJson(JsonWriter &w) const
{
    w.beginObject();
    for (const auto &[name, s] : snapshot()) {
        w.key(name);
        switch (s.type) {
          case MetricType::Counter:
            w.value(s.counter);
            break;
          case MetricType::Gauge:
            w.value(s.gauge);
            break;
          case MetricType::Summary:
            w.beginObject();
            w.field("count", s.summary.count());
            w.field("sum", s.summary.sum());
            w.field("min", s.summary.min());
            w.field("max", s.summary.max());
            w.field("mean", s.summary.mean());
            w.endObject();
            break;
          case MetricType::Histogram:
            w.beginObject();
            w.key("log2_buckets");
            w.beginArray();
            for (std::uint64_t b : s.buckets)
                w.value(b);
            w.endArray();
            w.endObject();
            break;
        }
    }
    w.endObject();
}

void
MetricRegistry::resetOwned()
{
    owned_.clear();
    ownedHists_.clear();
}

} // namespace obs
} // namespace contig
