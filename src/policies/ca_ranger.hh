/**
 * @file
 * CA paging + Translation Ranger — the combination the paper's
 * summary recommends (§VI-C): "We consider the two approaches
 * mutually assisted and their combination a good strategy to shield
 * contiguity against external fragmentation", analogous to how
 * khugepaged complements THP allocations.
 *
 * Faults go through CA paging (allocation-time contiguity, no
 * migration cost in the common case); a background ranger-style
 * daemon repairs only the VMAs whose coverage fell below a threshold
 * (sub-VMA placements under pressure, NUMA spills), using
 * migration/exchange. On an unfragmented machine the daemon finds
 * nothing to do.
 */

#ifndef CONTIG_POLICIES_CA_RANGER_HH
#define CONTIG_POLICIES_CA_RANGER_HH

#include "policies/ca_paging.hh"
#include "policies/ranger.hh"

namespace contig
{

struct CaRangerConfig
{
    CaPagingConfig ca;
    RangerConfig ranger;
    /** Repair a VMA only if one mapping covers less than this. */
    double repairBelowCoverage = 0.95;
};

struct CaRangerStats
{
    std::uint64_t vmasRepaired = 0;
    std::uint64_t vmasSkippedHealthy = 0;
};

class CaRangerPolicy : public CaPagingPolicy
{
  public:
    explicit CaRangerPolicy(const CaRangerConfig &cfg = {});

    std::string name() const override { return "ca+ranger"; }

    void onTick(Kernel &kernel) override;

    void onMunmap(Kernel &kernel, Process &proc, Vma &vma) override;

    const CaRangerStats &comboStats() const { return cstats_; }
    const RangerPolicy &ranger() const { return ranger_; }

  private:
    /** Fraction of the VMA covered by its largest contiguous run. */
    static double largestRunCoverage(Process &proc, const Vma &vma);

    CaRangerConfig cfg_;
    /** The embedded defragmenter (its allocate() is never used). */
    RangerPolicy ranger_;
    CaRangerStats cstats_;
};

} // namespace contig

#endif // CONTIG_POLICIES_CA_RANGER_HH
