/**
 * @file
 * The hypervisor substrate: a VirtualMachine couples a guest kernel
 * (a full Kernel instance whose "physical" memory is the guest-
 * physical address space) with a host backing process whose single
 * GuestRam VMA holds the gPA->hPA dimension.
 *
 * Nested paging falls out naturally:
 *  - the guest OS runs CA paging (or any policy) over gVA->gPA,
 *  - the host OS independently runs its own policy over gPA->hPA
 *    (the backing VMA's demand faults are the "nested faults"),
 *  - the host process's page table *is* the nested page table.
 *
 * First touch of any guest frame triggers the backing hook, which
 * faults the corresponding host page — so 2nd-dimension mappings are
 * created exactly when a real VM would take a nested EPT violation,
 * and persist as the VM ages (paper §III-C, "Virtualized execution").
 */

#ifndef CONTIG_VIRT_VM_HH
#define CONTIG_VIRT_VM_HH

#include <map>
#include <memory>

#include "mm/kernel.hh"

namespace contig
{

/** Guest machine shape. */
struct VmConfig
{
    /** Guest-physical memory per guest NUMA node. */
    std::uint64_t guestBytesPerNode = 512ull << 20;
    unsigned guestNodes = 1;
    /** Guest kernel knobs (THP on/off etc.). */
    KernelConfig guestKernel;
};

class VirtualMachine
{
  public:
    /**
     * @param host The host kernel (its active policy serves nested
     *        faults).
     * @param guest_policy The guest OS allocation policy.
     */
    VirtualMachine(Kernel &host,
                   std::unique_ptr<AllocationPolicy> guest_policy,
                   const VmConfig &cfg = {});
    ~VirtualMachine();

    VirtualMachine(const VirtualMachine &) = delete;
    VirtualMachine &operator=(const VirtualMachine &) = delete;

    Kernel &guest() { return *guest_; }
    const Kernel &guest() const { return *guest_; }
    Kernel &host() { return host_; }
    const Kernel &host() const { return host_; }

    /** The host process backing guest RAM. */
    Process &backing() { return *backing_; }

    /** Host virtual page of a guest frame (inside the backing VMA). */
    Vpn hostVpnFor(Pfn gfn) const
    { return ramVma_->start().pageNumber() + gfn; }

    /**
     * The nested translation of a guest frame: the host mapping
     * covering it, with pfn adjusted to the exact frame. Nullopt if
     * the guest frame was never backed.
     */
    std::optional<Mapping> nestedLookup(Pfn gfn) const;

    /**
     * Nested page-table walk for a guest frame, recording the nPT
     * node frames read (for the 2-D walk cost model).
     */
    void nestedWalk(Pfn gfn, WalkTrace &trace) const;

    /** The nested page table (the backing process's table). */
    const PageTable &nestedPageTable() const
    { return backing_->pageTable(); }

    /** Total guest frames backed in the host so far. */
    std::uint64_t backedPages() const { return ramVma_->allocatedPages; }

    // --- shadow paging (extension; see bench/ext_shadow_paging) ---------

    /**
     * Trap this guest process's page-table updates and maintain a
     * shadow gVA->hPA table for it. Each guest PTE update costs one
     * modelled VM exit (shadowExits() counts them). Existing leaves
     * are synchronized immediately.
     */
    void enableShadowPaging(Process &guest_proc);

    /** The shadow table of a shadow-paged process. */
    const PageTable &shadowTable(const Process &guest_proc) const;

    /** VM exits taken for shadow page-table synchronization. */
    std::uint64_t shadowExits() const { return shadowExits_; }

  private:
    void syncShadow(PageTable &shadow, Vpn vpn, const Mapping &m,
                    bool present);

    Kernel &host_;
    Process *backing_;
    Vma *ramVma_;
    std::unique_ptr<Kernel> guest_;
    /** Shadow tables keyed by guest process pid. */
    std::map<std::uint32_t, std::unique_ptr<PageTable>> shadows_;
    std::uint64_t shadowExits_ = 0;
};

} // namespace contig

#endif // CONTIG_VIRT_VM_HH
