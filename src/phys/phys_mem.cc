#include "phys/phys_mem.hh"

#include "base/align.hh"
#include "base/logging.hh"
#include "base/serialize.hh"

namespace contig
{

PhysicalMemory::PhysicalMemory(const PhysMemConfig &cfg)
    : frames_(cfg.numNodes * (cfg.bytesPerNode >> kPageShift))
{
    contig_assert(cfg.numNodes >= 1, "need at least one NUMA node");
    const std::uint64_t frames_per_node = cfg.bytesPerNode >> kPageShift;
    contig_assert(
        frames_per_node % pagesInOrder(cfg.zone.maxOrder) == 0,
        "node size must be a multiple of the top-order block");
    for (unsigned n = 0; n < cfg.numNodes; ++n) {
        zones_.push_back(std::make_unique<Zone>(
            frames_, n, Pfn{n * frames_per_node}, frames_per_node,
            cfg.zone));
    }
}

Zone &
PhysicalMemory::zoneOf(Pfn pfn)
{
    for (auto &z : zones_)
        if (z->contains(pfn))
            return *z;
    panic("pfn %llu not in any zone", static_cast<unsigned long long>(pfn));
}

const Zone &
PhysicalMemory::zoneOf(Pfn pfn) const
{
    return const_cast<PhysicalMemory *>(this)->zoneOf(pfn);
}

std::optional<Pfn>
PhysicalMemory::alloc(unsigned order, NodeId node)
{
    const unsigned n = zones_.size();
    for (unsigned i = 0; i < n; ++i) {
        auto pfn = zones_[(node + i) % n]->alloc(order);
        if (pfn)
            return pfn;
    }
    return std::nullopt;
}

bool
PhysicalMemory::allocSpecific(Pfn pfn, unsigned order)
{
    return zoneOf(pfn).allocSpecific(pfn, order);
}

void
PhysicalMemory::free(Pfn pfn, unsigned order)
{
    zoneOf(pfn).free(pfn, order);
}

bool
PhysicalMemory::isFreePage(Pfn pfn) const
{
    if (pfn >= frames_.size())
        return false;
    return zoneOf(pfn).buddy().isFreePage(pfn);
}

std::uint64_t
PhysicalMemory::freePages() const
{
    std::uint64_t total = 0;
    for (const auto &z : zones_)
        total += z->buddy().freePages();
    return total;
}

void
PhysicalMemory::drainPcpCaches()
{
    for (auto &z : zones_)
        z->drainPcp();
}

std::uint64_t
PhysicalMemory::pcpCachedPages() const
{
    std::uint64_t total = 0;
    for (const auto &z : zones_)
        total += z->pcpCachedPages();
    return total;
}

std::vector<Cluster>
PhysicalMemory::freeClusters() const
{
    std::vector<Cluster> out;
    for (const auto &z : zones_) {
        auto clusters = z->contigMap().snapshot();
        out.insert(out.end(), clusters.begin(), clusters.end());
    }
    return out;
}


void
PhysicalMemory::saveState(Serializer &s) const
{
    const std::size_t sec = s.beginSection(sectionTag('P', 'M', 'E', 'M'));
    s.u64(frames_.size());
    s.u64(zones_.size());
    for (const auto &z : zones_)
        z->saveState(s);
    s.endSection(sec);
}

} // namespace contig
