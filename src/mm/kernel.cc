#include "mm/kernel.hh"

#include <algorithm>

#include "base/align.hh"
#include "base/logging.hh"
#include "obs/trace.hh"

namespace contig
{

Kernel::Kernel(const KernelConfig &cfg,
               std::unique_ptr<AllocationPolicy> policy)
    : cfg_(cfg), physMem_(cfg.phys), policy_(std::move(policy)),
      faultPhase_(obs::Phase::bind(obs::MetricRegistry::global(),
                                   cfg.metricsPrefix + ".fault")),
      daemonPhase_(obs::Phase::bind(obs::MetricRegistry::global(),
                                    cfg.metricsPrefix + ".daemon"))
{
    contig_assert(policy_ != nullptr, "kernel needs an allocation policy");
    metricSource_ = obs::MetricSource(
        obs::MetricRegistry::global(), cfg_.metricsPrefix,
        [this](obs::MetricSink &sink) { collectMetrics(sink); });
}

void
Kernel::collectMetrics(obs::MetricSink &sink) const
{
    sink.counter("faults", faultStats_.faults);
    sink.counter("huge_faults", faultStats_.hugeFaults);
    sink.counter("base_faults", faultStats_.baseFaults);
    sink.counter("cow_faults", faultStats_.cowFaults);
    sink.counter("file_faults", faultStats_.fileFaults);
    sink.counter("huge_fallbacks", faultStats_.hugeFallbacks);
    sink.counter("fault_cycles", faultStats_.totalCycles);
    if (faultStats_.latencyUs.count()) {
        // quantile() sorts lazily; work on a copy to stay const.
        Percentiles lat = faultStats_.latencyUs;
        sink.gauge("fault_latency_us.p50", lat.quantile(0.50));
        sink.gauge("fault_latency_us.p95", lat.quantile(0.95));
        sink.gauge("fault_latency_us.p99", lat.quantile(0.99));
    }
    sink.gauge("kernel_pool_pages",
               static_cast<double>(kernelPoolPages_));
    sink.gauge("processes", static_cast<double>(processes_.size()));

    for (const auto &[name, v] : counters_.all())
        sink.counter(name, v);

    // Per-zone allocator state merges into one "buddy." / one
    // "contig_map." group (MetricSample::mergeFrom adds by name).
    for (unsigned n = 0; n < physMem_.numNodes(); ++n) {
        const Zone &zone = physMem_.zone(n);
        {
            obs::MetricSink::Scope s(sink, "buddy");
            zone.buddy().collectMetrics(sink);
        }
        {
            obs::MetricSink::Scope s(sink, "contig_map");
            zone.contigMap().collectMetrics(sink);
        }
    }

    {
        obs::MetricSink::Scope s(sink, "policy");
        policy_->collectMetrics(sink);
    }
}

Kernel::~Kernel()
{
    // Destroy processes before the kernel pool and physical memory:
    // their page-table destructors return node frames via
    // freeKernelFrame().
    processes_.clear();
}

Process &
Kernel::createProcess(const std::string &name, NodeId home_node)
{
    contig_assert(home_node < physMem_.numNodes(), "bad home node");
    processes_.push_back(
        std::make_unique<Process>(*this, nextPid_++, name, home_node));
    return *processes_.back();
}

void
Kernel::exitProcess(Process &proc)
{
    // Tear down every VMA (policy hook + page release).
    std::vector<Vma *> vmas;
    proc.addressSpace().forEachVma([&](Vma &vma) { vmas.push_back(&vma); });
    for (Vma *vma : vmas)
        munmap(proc, *vma);

    auto it = std::find_if(processes_.begin(), processes_.end(),
                           [&](const auto &p) { return p.get() == &proc; });
    contig_assert(it != processes_.end(), "exit of unknown process");
    processes_.erase(it);
}

Process *
Kernel::findProcess(std::uint32_t pid)
{
    for (auto &p : processes_)
        if (p->pid() == pid)
            return p.get();
    return nullptr;
}

File &
Kernel::createFile(std::uint64_t size_pages)
{
    return pageCache_.createFile(size_pages);
}

void
Kernel::dropCaches()
{
    pageCache_.dropCaches(*this);
}

void
Kernel::readFile(File &file, std::uint64_t page_start,
                 std::uint64_t n_pages)
{
    contig_assert(page_start + n_pages <= file.sizePages(),
                  "readFile beyond EOF");
    for (std::uint64_t p = page_start; p < page_start + n_pages; ++p) {
        if (file.isCached(p))
            continue;
        if (pageCache_.ensureCached(*this, file, p) == kInvalidPfn)
            fatal("out of memory reading file %u", file.id());
    }
}

Vma &
Kernel::mmapAnon(Process &proc, std::uint64_t bytes)
{
    Vma &vma = proc.addressSpace().mmap(bytes, VmaKind::Anon);
    policy_->onMmap(*this, proc, vma);
    return vma;
}

Vma &
Kernel::mmapFile(Process &proc, std::uint32_t file_id, std::uint64_t bytes,
                 std::uint64_t file_offset_pages)
{
    Vma &vma = proc.addressSpace().mmap(bytes, VmaKind::File, std::nullopt,
                                        file_id, file_offset_pages);
    policy_->onMmap(*this, proc, vma);
    return vma;
}

void
Kernel::unmapVmaPages(Process &proc, Vma &vma)
{
    PageTable &pt = proc.pageTable();
    const Vpn start = vma.start().pageNumber();
    const Vpn end = start + vma.pages();

    // Collect the leaves first: unmapping while iterating would
    // invalidate the traversal.
    std::vector<std::pair<Vpn, Mapping>> leaves;
    pt.forEachLeaf([&](Vpn vpn, const Mapping &m) {
        if (vpn >= start && vpn < end)
            leaves.emplace_back(vpn, m);
    });
    for (auto &[vpn, m] : leaves) {
        pt.unmap(vpn, m.order);
        const std::uint64_t n = pagesInOrder(m.order);
        for (std::uint64_t i = 0; i < n; ++i)
            --physMem_.frame(m.pfn + i).mapCount;
        putFrame(m.pfn, m.order);
    }
}

void
Kernel::munmap(Process &proc, Vma &vma)
{
    policy_->onMunmap(*this, proc, vma);
    unmapVmaPages(proc, vma);
    proc.addressSpace().munmap(vma);
}

void
Kernel::claimFrames(Pfn pfn, unsigned order, FrameOwner kind,
                    std::uint32_t owner_id, Addr owner_vaddr)
{
    const std::uint64_t n = pagesInOrder(order);
    for (std::uint64_t i = 0; i < n; ++i) {
        Frame &f = physMem_.frame(pfn + i);
        f.ownerKind = kind;
        f.ownerId = owner_id;
        f.ownerVaddr = owner_vaddr + i * kPageSize;
        f.refCount = 0;
        f.mapCount = 0;
    }
    physMem_.frame(pfn).refCount = 1;
    CONTIG_TRACE(obs::TraceEventKind::Alloc, pfn, order, owner_id);
    if (backingHook)
        backingHook(pfn, order);
}

void
Kernel::getFrame(Pfn pfn)
{
    ++physMem_.frame(pfn).refCount;
}

void
Kernel::putFrame(Pfn pfn, unsigned order)
{
    Frame &f = physMem_.frame(pfn);
    contig_assert(f.refCount > 0, "putFrame on unreferenced frame");
    if (--f.refCount == 0) {
        const std::uint64_t n = pagesInOrder(order);
        for (std::uint64_t i = 0; i < n; ++i) {
            Frame &g = physMem_.frame(pfn + i);
            g.ownerKind = FrameOwner::None;
            g.ownerId = kNoOwner;
            g.ownerVaddr = 0;
        }
        physMem_.free(pfn, order);
    }
}

Pfn
Kernel::allocKernelFrame(NodeId node)
{
    if (kernelPool_.empty()) {
        if (auto blk = physMem_.alloc(kKernelPoolOrder, node)) {
            claimFrames(*blk, kKernelPoolOrder, FrameOwner::PageTable,
                        kNoOwner, 0);
            const std::uint64_t n = pagesInOrder(kKernelPoolOrder);
            kernelPoolPages_ += n;
            // Hand out ascending: push descending.
            for (std::uint64_t i = n; i > 0; --i)
                kernelPool_.push_back(*blk + i - 1);
        } else if (auto single = physMem_.alloc(0, node)) {
            // Memory too fragmented for a chunk: fall back to one page.
            claimFrames(*single, 0, FrameOwner::PageTable, kNoOwner, 0);
            kernelPoolPages_ += 1;
            kernelPool_.push_back(*single);
        } else {
            fatal("out of memory allocating a kernel (page-table) frame");
        }
    }
    Pfn pfn = kernelPool_.back();
    kernelPool_.pop_back();
    return pfn;
}

void
Kernel::freeKernelFrame(Pfn pfn)
{
    // Node frames return to the pool, not to the buddy allocator —
    // matching the sticky behaviour of per-CPU lists.
    kernelPool_.push_back(pfn);
}

void
Kernel::touch(Process &proc, Gva gva, Access access)
{
    Vma *vma = proc.addressSpace().findVma(gva);
    contig_assert(vma, "touch outside any VMA (gva 0x%llx)",
                  static_cast<unsigned long long>(gva.value));

    const Vpn vpn = gva.pageNumber();
    auto m = proc.pageTable().lookup(vpn);
    if (m && m->valid()) {
        if (access == Access::Write && m->cow) {
            obs::ScopedPhase timer(faultPhase_, &faultStats_.totalCycles);
            cowFault(proc, *vma, vpn, *m);
        }
        proc.noteTouched(*vma, vpn);
        return;
    }

    {
        obs::ScopedPhase timer(faultPhase_, &faultStats_.totalCycles);
        if (vma->kind() == VmaKind::File)
            fileFault(proc, *vma, vpn);
        else
            anonFault(proc, *vma, vpn);
    }
    proc.noteTouched(*vma, vpn);
}

void
Kernel::anonFault(Process &proc, Vma &vma, Vpn vpn)
{
    unsigned order = 0;
    if (cfg_.thpEnabled && policy_->allowsHugeFaults() &&
        vma.coversAligned(vpn, kHugeOrder)) {
        // THP faults require the whole aligned huge range unmapped.
        Vpn huge_base = vpn & ~(pagesInOrder(kHugeOrder) - 1);
        bool range_clear = true;
        for (Vpn v = huge_base;
             v < huge_base + pagesInOrder(kHugeOrder) && range_clear;
             v += 1) {
            if (proc.pageTable().lookup(v))
                range_clear = false;
        }
        if (range_clear)
            order = kHugeOrder;
    }

    Vpn base = vpn & ~(pagesInOrder(order) - 1);
    AllocResult res = policy_->allocate(*this, proc, vma, base, order);
    if (!res.ok()) {
        // Direct reclaim: evict clean page-cache pages and retry.
        dropCaches();
        counters_.inc("reclaim.direct");
        res = policy_->allocate(*this, proc, vma, base, order);
    }
    if (!res.ok() && order == kHugeOrder) {
        ++faultStats_.hugeFallbacks;
        CONTIG_TRACE(obs::TraceEventKind::HugeFallback, vpn);
        order = 0;
        base = vpn;
        res = policy_->allocate(*this, proc, vma, base, order);
    }
    if (!res.ok())
        fatal("out of memory: anon fault in %s (vma %u)",
              proc.name().c_str(), vma.id());

    claimFrames(res.pfn, order, FrameOwner::Anon, proc.pid(),
                base << kPageShift);
    proc.pageTable().map(base, res.pfn, order, true, false);
    const std::uint64_t n = pagesInOrder(order);
    for (std::uint64_t i = 0; i < n; ++i)
        ++physMem_.frame(res.pfn + i).mapCount;
    vma.allocatedPages += n;

    const Cycles cycles = cfg_.faultBaseCycles +
                          cfg_.zeroCyclesPerPage * n + res.placementCycles;
    policy_->onMapped(*this, proc, vma, base, res.pfn, order);
    finishFault(proc, vma, base, res.pfn, order, cycles, false, false);
}

void
Kernel::cowFault(Process &proc, Vma &vma, Vpn vpn, const Mapping &m)
{
    const unsigned order = m.order;
    const Vpn base = vpn & ~(pagesInOrder(order) - 1);

    AllocResult res = policy_->allocate(*this, proc, vma, base, order);
    if (!res.ok())
        fatal("out of memory: COW fault in %s", proc.name().c_str());

    claimFrames(res.pfn, order, FrameOwner::Anon, proc.pid(),
                base << kPageShift);
    proc.pageTable().unmap(base, order);
    const std::uint64_t n = pagesInOrder(order);
    for (std::uint64_t i = 0; i < n; ++i) {
        --physMem_.frame(m.pfn + i).mapCount;
        ++physMem_.frame(res.pfn + i).mapCount;
    }
    putFrame(m.pfn, order);
    proc.pageTable().map(base, res.pfn, order, true, false);

    const Cycles cycles = cfg_.faultBaseCycles +
                          cfg_.copyCyclesPerPage * n + res.placementCycles;
    ++faultStats_.cowFaults;
    policy_->onMapped(*this, proc, vma, base, res.pfn, order);
    finishFault(proc, vma, base, res.pfn, order, cycles, true, false);
}

void
Kernel::fileFault(Process &proc, Vma &vma, Vpn vpn)
{
    File &file = pageCache_.file(vma.fileId());
    const std::uint64_t file_page =
        vma.fileOffsetPages() + (vpn - vma.start().pageNumber());
    contig_assert(file_page < file.sizePages(),
                  "file fault beyond EOF (page %llu)",
                  static_cast<unsigned long long>(file_page));

    Pfn pfn = pageCache_.ensureCached(*this, file, file_page);
    if (pfn == kInvalidPfn)
        fatal("out of memory: page-cache fault in %s", proc.name().c_str());

    // File mappings are shared read-only in this model.
    proc.pageTable().map(vpn, pfn, 0, false, false);
    getFrame(pfn);
    ++physMem_.frame(pfn).mapCount;
    vma.allocatedPages += 1;

    ++faultStats_.fileFaults;
    const Cycles cycles = cfg_.faultBaseCycles;
    finishFault(proc, vma, vpn, pfn, 0, cycles, false, true);
}

void
Kernel::finishFault(Process &proc, Vma &vma, Vpn vpn, Pfn pfn,
                    unsigned order, Cycles cycles, bool cow, bool file)
{
    ++faultStats_.faults;
    if (!cow && !file) {
        if (order == kHugeOrder)
            ++faultStats_.hugeFaults;
        else
            ++faultStats_.baseFaults;
    }
    faultStats_.totalCycles += cycles;
    faultStats_.latencyUs.add(static_cast<double>(cycles) /
                              cfg_.cyclesPerUs);

    if (file)
        CONTIG_TRACE(obs::TraceEventKind::FileFault, vpn, pfn,
                     vma.fileId());
    else if (cow)
        CONTIG_TRACE(obs::TraceEventKind::CowFault, vpn, pfn, order);
    else
        CONTIG_TRACE(obs::TraceEventKind::PageFault, vpn, pfn, order);

    if (onFault) {
        FaultEvent ev;
        ev.proc = &proc;
        ev.vma = &vma;
        ev.vpn = vpn;
        ev.pfn = pfn;
        ev.order = order;
        ev.cow = cow;
        ev.file = file;
        onFault(ev);
    }

    if (faultStats_.faults % cfg_.tickPeriodFaults == 0) {
        CONTIG_TRACE(obs::TraceEventKind::DaemonTick, faultStats_.faults);
        obs::ScopedPhase timer(daemonPhase_);
        policy_->onTick(*this);
    }
}

void
Kernel::forkInto(Process &parent, Process &child)
{
    // Clone anonymous VMAs COW-style.
    parent.addressSpace().forEachVma([&](Vma &pvma) {
        if (pvma.kind() != VmaKind::Anon)
            return;
        Vma &cvma = child.addressSpace().mmap(
            pvma.bytes(), VmaKind::Anon, pvma.start());
        PageTable &ppt = parent.pageTable();
        PageTable &cpt = child.pageTable();
        const Vpn start = pvma.start().pageNumber();
        const Vpn end = start + pvma.pages();
        std::vector<std::pair<Vpn, Mapping>> leaves;
        ppt.forEachLeaf([&](Vpn vpn, const Mapping &m) {
            if (vpn >= start && vpn < end)
                leaves.emplace_back(vpn, m);
        });
        for (auto &[vpn, m] : leaves) {
            // Write-protect the parent's leaf and share it COW.
            ppt.setWritable(vpn, false, true);
            cpt.map(vpn, m.pfn, m.order, false, true);
            getFrame(m.pfn);
            const std::uint64_t n = pagesInOrder(m.order);
            for (std::uint64_t i = 0; i < n; ++i)
                ++physMem_.frame(m.pfn + i).mapCount;
            cvma.allocatedPages += n;
        }
    });
}

} // namespace contig
