/**
 * @file
 * Reproduces Table VII: the unsafe-load (USL) estimation comparing
 * SpOT's transient-execution exposure with Spectre-style branch
 * speculation, using the paper's two equations over measured event
 * rates (geometric mean across the workloads).
 * Expected shape: DTLB misses are a small fraction of branches
 * (~0.25% vs ~5.9% of instructions), but SpOT's speculation window
 * (a full nested walk) is longer than branch resolution, so SpOT
 * USLs land at a few percent of instructions vs Spectre's ~16%.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/bench_io.hh"
#include "core/report.hh"

using namespace contig;

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("table7_usl", argc, argv);

    VirtSystem sys(PolicyKind::Ca, PolicyKind::Ca, 7);
    std::vector<double> branches, misses, spectre, spot;
    for (const auto &name : paperWorkloads()) {
        auto wl = makeWorkload(name, {1.0, 7});
        Process &proc = sys.guest().createProcess(name);
        wl->setup(proc);
        auto r = runTranslation(*wl, &sys.vm(), XlatScheme::Spot,
                                ScaledDefaults::kAccessesPerRun);
        auto usl = estimateUsl(r.stats, ScaledDefaults::perf());
        branches.push_back(usl.branchesPerInstr);
        misses.push_back(std::max(usl.dtlbMissesPerInstr, 1e-9));
        spectre.push_back(usl.spectreUslPerInstr);
        spot.push_back(std::max(usl.spotUslPerInstr, 1e-9));
        wl->teardown();
        sys.guest().exitProcess(proc);
    }

    Report rep("Table VII — unsafe-load estimation "
               "(geomean, per instruction)");
    rep.header({"branches/instr", "DTLB misses/instr",
                "Spectre USL/instr", "SpOT USL/instr"});
    rep.row({Report::pct(geomean(branches)),
             Report::pct(geomean(misses), 3),
             Report::pct(geomean(spectre)),
             Report::pct(geomean(spot), 2)});
    out.add(rep);
    rep.print();

    std::printf("\npaper: 5.87%% branches, 0.25%% DTLB misses, "
                "16.5%% Spectre USL, 2.9%% SpOT USL -> InvisiSpec-"
                "style mitigation costs <2%% for SpOT\n");
    out.write();
    return 0;
}
