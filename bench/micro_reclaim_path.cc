/**
 * @file
 * Micro-benchmark: the reclaim path itself, on a deliberately tiny
 * machine (1 node x 32 MiB) so a 1.5x-overcommitted populate drives
 * every escalation stage. Three tables:
 *
 *  - direct vs kswapd: the same populate with the background
 *    reclaimer off (every shortfall is a direct-reclaim stall on the
 *    faulting thread) and on (per-chunk watermark probes balance the
 *    zone toward the high watermark, moving much of the reclaim work
 *    off the fault path);
 *  - victim shape: 4 KiB victims (thp off) against THP victims, which
 *    must be split into base mappings before swap-out
 *    (split_huge_page on the Linux reclaim path);
 *  - swap-cost sweep: the refault leg re-touches swapped-out pages
 *    under three modelled swap-in latencies — refault counts stay
 *    fixed while the charged fault cycles scale with the device.
 *
 * Reclaim/fault counters are deterministic (sequential kernel, fixed
 * seeds) and gated by the committed baseline; wall-clock columns are
 * named *.wall_us so check-baseline ignores them.
 */

#include <chrono>
#include <cstdio>
#include <string>

#include "core/bench_io.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "mm/kernel.hh"

using namespace contig;

namespace
{

constexpr std::uint64_t kMiB = 1ull << 20;
constexpr std::uint64_t kNodeBytes = 32 * kMiB;
constexpr std::uint64_t kWsBytes = kNodeBytes + kNodeBytes / 2;
constexpr std::uint64_t kRetouchBytes = 8 * kMiB;

struct Cell
{
    std::uint64_t faults = 0;
    std::uint64_t reclaimed = 0;
    std::uint64_t swapOuts = 0;
    std::uint64_t refaults = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t direct = 0;
    std::uint64_t kswapdRuns = 0;
    std::uint64_t thpSplits = 0;
    std::uint64_t scans = 0;
    std::uint64_t rotations = 0;
    double faultMcycles = 0.0;
    double wallUs = 0.0;
};

std::uint64_t
rstat(const std::atomic<std::uint64_t> &a)
{
    return a.load(std::memory_order_relaxed);
}

/**
 * Overcommit populate + refault leg: sweep a 1.5x-phys anon region
 * once, then re-touch its (long since swapped-out) first pages.
 */
Cell
runCell(const std::string &prefix, PolicyKind kind, bool kswapd,
        Cycles swap_in_cycles)
{
    KernelConfig cfg = kernelConfigFor(kind);
    cfg.phys.bytesPerNode = kNodeBytes;
    cfg.phys.numNodes = 1;
    cfg.reclaimEnabled = true;
    cfg.kswapdEnabled = kswapd;
    cfg.contigAwareReclaim = false;
    cfg.swapCost.inCyclesPerPage = swap_in_cycles;
    cfg.metricsPrefix = prefix;
    Kernel kernel(cfg, makePolicy(kind));
    Process &proc = kernel.createProcess("overcommit");
    Vma &vma = proc.mmap(kWsBytes);

    const auto t0 = std::chrono::steady_clock::now();
    proc.touchRange(vma.start(), kWsBytes);
    proc.touchRange(vma.start(), kRetouchBytes);
    const auto t1 = std::chrono::steady_clock::now();

    const ReclaimStats &rs = kernel.reclaim()->stats();
    Cell c;
    c.faults = kernel.faultStats().faults;
    c.reclaimed = rstat(rs.reclaimed);
    c.swapOuts = rstat(rs.swapOuts);
    c.refaults = rstat(rs.refaults);
    c.cacheHits = rstat(rs.swapCacheHits);
    c.direct = rstat(rs.directReclaims);
    c.kswapdRuns = rstat(rs.kswapdRuns);
    c.thpSplits = rstat(rs.thpSplits);
    c.scans = rstat(rs.scans);
    c.rotations = rstat(rs.rotations);
    c.faultMcycles =
        static_cast<double>(kernel.faultStats().totalCycles) / 1e6;
    c.wallUs =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    return c;
}

std::string
u64(std::uint64_t v)
{
    return std::to_string(v);
}

} // namespace

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("micro_reclaim_path", argc, argv);
    out.note("node_mib", kNodeBytes / kMiB);
    out.note("working_set_mib", kWsBytes / kMiB);
    out.note("retouch_mib", kRetouchBytes / kMiB);

    Report mode("micro — direct vs kswapd reclaim "
                "(1.5x overcommit populate, THP)");
    mode.header({"mode", "faults", "reclaimed", "swapout", "refault",
                 "direct", "kswapd_runs", "wall_us"});
    for (bool kswapd : {false, true}) {
        const Cell c = runCell(kswapd ? "mr_kswapd" : "mr_direct",
                               PolicyKind::Thp, kswapd, 60000);
        mode.row({kswapd ? "kswapd" : "direct-only", u64(c.faults),
                  u64(c.reclaimed), u64(c.swapOuts), u64(c.refaults),
                  u64(c.direct), u64(c.kswapdRuns),
                  Report::num(c.wallUs, 0)});
    }
    out.add(mode);
    mode.print();

    Report victim("micro — victim shape: 4 KiB vs THP-split");
    victim.header({"victims", "reclaimed", "thp_splits", "scans",
                   "rotations", "wall_us"});
    for (PolicyKind kind : {PolicyKind::Base4k, PolicyKind::Thp}) {
        const Cell c = runCell(kind == PolicyKind::Thp ? "mr_thp"
                                                       : "mr_4k",
                               kind, true, 60000);
        victim.row({kind == PolicyKind::Thp ? "thp-split" : "4k",
                    u64(c.reclaimed), u64(c.thpSplits), u64(c.scans),
                    u64(c.rotations), Report::num(c.wallUs, 0)});
    }
    out.add(victim);
    std::printf("\n");
    victim.print();

    Report swp("micro — swap-in cost sweep (refault leg)");
    swp.header({"in_cycles_per_page", "refault", "cache_hits",
                "fault_mcycles", "wall_us"});
    for (Cycles in_cycles : {Cycles{15000}, Cycles{60000},
                             Cycles{240000}}) {
        const Cell c = runCell("mr_swap" + u64(in_cycles / 1000) + "k",
                               PolicyKind::Thp, true, in_cycles);
        swp.row({u64(in_cycles), u64(c.refaults), u64(c.cacheHits),
                 Report::num(c.faultMcycles, 1),
                 Report::num(c.wallUs, 0)});
    }
    out.add(swp);
    std::printf("\n");
    swp.print();

    std::printf("\nexpected: kswapd mode moves a large share of the "
                "reclaim work off the fault path (fewer direct stalls, "
                "lower wall time); THP victims split before swap-out; "
                "refault counts are invariant under the swap-cost "
                "sweep while fault cycles scale with the device\n");
    out.write();
    return 0;
}
