#include <gtest/gtest.h>

#include "base/align.hh"
#include "mm/kernel.hh"
#include "mm/migrate.hh"

using namespace contig;

namespace
{

std::unique_ptr<Kernel>
makeKernel()
{
    KernelConfig cfg;
    cfg.phys.bytesPerNode = 128ull << 20;
    cfg.phys.numNodes = 1;
    return std::make_unique<Kernel>(cfg,
                                    std::make_unique<DefaultThpPolicy>());
}

} // namespace

TEST(PageCache, ReadaheadFillsWindow)
{
    auto k = makeKernel();
    File &f = k->createFile(256);
    k->readFile(f, 0, 1);
    EXPECT_EQ(f.cachedPages(), kReadaheadPages);
    EXPECT_TRUE(f.isCached(0));
    EXPECT_TRUE(f.isCached(kReadaheadPages - 1));
    EXPECT_FALSE(f.isCached(kReadaheadPages));
}

TEST(PageCache, ReadaheadClampsAtEof)
{
    auto k = makeKernel();
    File &f = k->createFile(10);
    k->readFile(f, 8, 2);
    EXPECT_EQ(f.cachedPages(), 2u);
}

TEST(PageCache, RereadDoesNotReallocate)
{
    auto k = makeKernel();
    File &f = k->createFile(64);
    k->readFile(f, 0, 64);
    const std::uint64_t free_after = k->physMem().freePages();
    k->readFile(f, 0, 64);
    EXPECT_EQ(k->physMem().freePages(), free_after);
}

TEST(PageCache, SparseReadsLeaveHoles)
{
    auto k = makeKernel();
    File &f = k->createFile(256);
    k->readFile(f, 0, 1);
    k->readFile(f, 128, 1);
    EXPECT_TRUE(f.isCached(0));
    EXPECT_TRUE(f.isCached(128));
    EXPECT_FALSE(f.isCached(64));
    EXPECT_EQ(f.cachedPages(), 2 * kReadaheadPages);
}

TEST(PageCache, DropCachesFreesEverything)
{
    auto k = makeKernel();
    const std::uint64_t free0 = k->physMem().freePages();
    File &f = k->createFile(256);
    k->readFile(f, 0, 256);
    EXPECT_LT(k->physMem().freePages(), free0);
    k->dropCaches();
    EXPECT_EQ(k->physMem().freePages(), free0);
    EXPECT_EQ(f.cachedPages(), 0u);
}

TEST(PageCache, DropCachesSkipsMappedPages)
{
    auto k = makeKernel();
    File &f = k->createFile(64);
    Process &p = k->createProcess("r");
    Vma &vma = p.mmapFile(f.id(), 64 * kPageSize);
    p.touch(vma.start(), Access::Read);
    const std::uint64_t cached = f.cachedPages();
    ASSERT_GT(cached, 0u);
    k->dropCaches();
    // The mapped page survives; unmapped readahead pages are dropped.
    EXPECT_TRUE(f.isCached(0));
    EXPECT_LT(f.cachedPages(), cached);
    k->exitProcess(p);
    k->dropCaches();
    EXPECT_EQ(f.cachedPages(), 0u);
}

TEST(PageCache, DirectReclaimEvictsUnderPressure)
{
    auto k = makeKernel();
    // Fill ~half the machine with cache...
    File &f = k->createFile((48ull << 20) >> kPageShift);
    k->readFile(f, 0, f.sizePages());
    ASSERT_GT(f.cachedPages(), 0u);
    // ...then allocate more anon memory than remains free.
    Process &p = k->createProcess("big");
    Vma &vma = p.mmap(100ull << 20);
    p.touchRange(vma.start(), vma.bytes());
    // The fault path reclaimed the cache instead of dying.
    EXPECT_GT(k->counters().get("reclaim.direct"), 0u);
    EXPECT_LT(f.cachedPages(), f.sizePages());
}

TEST(Migrate, SwapLeavesExchangesTwoProcesses)
{
    auto k = makeKernel();
    Process &a = k->createProcess("a");
    Process &b = k->createProcess("b");
    Vma &va = a.mmap(kHugeSize);
    Vma &vb = b.mmap(kHugeSize);
    a.touch(va.start());
    b.touch(vb.start());

    auto ma = a.pageTable().lookup(va.start().pageNumber());
    auto mb = b.pageTable().lookup(vb.start().pageNumber());
    ASSERT_TRUE(ma && mb);

    EXPECT_EQ(swapLeaves(*k, a, va.start().pageNumber(), mb->pfn),
              MigrateResult::Done);
    auto ma2 = a.pageTable().lookup(va.start().pageNumber());
    auto mb2 = b.pageTable().lookup(vb.start().pageNumber());
    EXPECT_EQ(ma2->pfn, mb->pfn);
    EXPECT_EQ(mb2->pfn, ma->pfn);
    // Frame reverse-mapping swapped along.
    const Frame &fa = k->physMem().frame(ma2->pfn);
    EXPECT_EQ(fa.ownerId, a.pid());
    EXPECT_EQ(k->counters().get("migrate.shootdowns"), 2u);
    k->exitProcess(a);
    k->exitProcess(b);
}

TEST(Migrate, SwapRefusesOrderMismatch)
{
    KernelConfig cfg;
    cfg.phys.bytesPerNode = 128ull << 20;
    cfg.phys.numNodes = 1;
    cfg.thpEnabled = true;
    Kernel k(cfg, std::make_unique<DefaultThpPolicy>());
    Process &a = k.createProcess("a");
    Process &b = k.createProcess("b");
    Vma &va = a.mmap(kHugeSize);     // huge leaf
    Vma &vb = b.mmap(64 << 10);      // 4 KiB leaves
    a.touch(va.start());
    b.touch(vb.start());
    auto mb = b.pageTable().lookup(vb.start().pageNumber());
    ASSERT_TRUE(mb);
    Pfn dest = alignDown(mb->pfn, 512);
    EXPECT_NE(swapLeaves(k, a, va.start().pageNumber(), dest),
              MigrateResult::Done);
}

TEST(Migrate, SwapRefusesUnmovableDestinations)
{
    auto k = makeKernel();
    Process &a = k->createProcess("a");
    Vma &va = a.mmap(kPageSize);
    a.touch(va.start());
    // Destination is a page-table pool frame: not anonymous.
    Pfn pool_frame = 0;
    bool found = false;
    for (Pfn p = 0; p < k->physMem().totalFrames() && !found; ++p) {
        if (k->physMem().frame(p).ownerKind == FrameOwner::PageTable) {
            pool_frame = p;
            found = true;
        }
    }
    ASSERT_TRUE(found);
    EXPECT_EQ(swapLeaves(*k, a, va.start().pageNumber(), pool_frame),
              MigrateResult::DestBusy);
}
