#!/usr/bin/env python3
"""Validate a bench binary's --json output against the documented schema.

Usage: check_bench_json.py <bench-binary> [extra args...]
       check_bench_json.py --timeline-file <timeline.jsonl>

Runs the bench with --json into a temp file and checks the document is
valid JSON of shape {schema_version, bench, config, rows, metrics}:
  - "schema_version" is an integer (currently 2),
  - "bench" is a non-empty string,
  - "config" is an object with the scaled-machine geometry keys and a
    "run" reproducibility object (RNG seeds, kernel knobs),
  - "rows" is a non-empty list of objects each tagged with its "table"
    caption,
  - "metrics" is a non-empty object of MetricRegistry samples
    (counters/gauges as numbers, summaries as {count, sum, min, max,
    mean}, histograms as {log2_buckets: [...]}).

With --timeline-file it instead validates an observatory timeline: one
JSON snapshot record per line, per-stream strictly-increasing seq and
non-decreasing tick, kind "full"|"delta" with the first record of every
stream a "full".

Registered as a ctest so the schema cannot drift silently.
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path


def fail(msg):
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_metric(name, value):
    if isinstance(value, (int, float)):
        return
    if not isinstance(value, dict):
        fail(f"metric {name!r} is neither number nor object: {value!r}")
    if "log2_buckets" in value:
        if not all(isinstance(b, (int, float))
                   for b in value["log2_buckets"]):
            fail(f"histogram {name!r} has non-numeric buckets")
        return
    missing = {"count", "sum", "min", "max", "mean"} - value.keys()
    if missing:
        fail(f"summary {name!r} missing keys {sorted(missing)}")


def check_timeline(path):
    """Validate a --timeline JSONL file (one snapshot per line)."""
    path = Path(path)
    if not path.exists():
        fail(f"timeline file not found: {path}")
    streams = {}  # stream id -> (last seq, last tick)
    n_lines = 0
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if not line.strip():
            continue
        n_lines += 1
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{lineno}: not valid JSON: {e}")
        if not isinstance(rec, dict):
            fail(f"{path}:{lineno}: record is not an object")
        for key in ("stream", "domain", "seq", "tick", "kind", "set"):
            if key not in rec:
                fail(f"{path}:{lineno}: missing key {key!r}")
        if rec["kind"] not in ("full", "delta"):
            fail(f"{path}:{lineno}: bad kind {rec['kind']!r}")
        if not isinstance(rec["set"], dict):
            fail(f"{path}:{lineno}: 'set' is not an object")
        if not all(isinstance(v, (int, float))
                   for v in rec["set"].values()):
            fail(f"{path}:{lineno}: non-numeric value in 'set'")
        sid, seq, tick = rec["stream"], rec["seq"], rec["tick"]
        if sid not in streams:
            if rec["kind"] != "full":
                fail(f"{path}:{lineno}: stream {sid} starts with a "
                     f"delta record")
        else:
            last_seq, last_tick = streams[sid]
            if seq <= last_seq:
                fail(f"{path}:{lineno}: stream {sid} seq not "
                     f"strictly increasing ({last_seq} -> {seq})")
            if tick < last_tick:
                fail(f"{path}:{lineno}: stream {sid} tick went "
                     f"backwards ({last_tick} -> {tick})")
        streams[sid] = (seq, tick)
    if not n_lines:
        fail(f"{path}: timeline is empty")
    print(f"check_bench_json: OK: timeline {path}: {n_lines} snapshots, "
          f"{len(streams)} streams")


def main():
    if len(sys.argv) < 2:
        fail("usage: check_bench_json.py <bench-binary> [args...] | "
             "--timeline-file <timeline.jsonl>")
    if sys.argv[1] == "--timeline-file":
        if len(sys.argv) != 3:
            fail("--timeline-file takes exactly one path")
        check_timeline(sys.argv[2])
        return
    bench = Path(sys.argv[1])
    if not bench.exists():
        fail(f"bench binary not found: {bench}")

    with tempfile.TemporaryDirectory() as tmp:
        out_path = Path(tmp) / "out.json"
        cmd = [str(bench), *sys.argv[2:], "--json", str(out_path)]
        proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, timeout=600)
        if proc.returncode != 0:
            fail(f"{' '.join(cmd)} exited {proc.returncode}:\n"
                 f"{proc.stdout.decode(errors='replace')[-2000:]}")
        if not out_path.exists():
            fail("bench did not create the --json file")
        try:
            doc = json.loads(out_path.read_text())
        except json.JSONDecodeError as e:
            fail(f"output is not valid JSON: {e}")

    for key in ("schema_version", "bench", "config", "rows", "metrics"):
        if key not in doc:
            fail(f"missing top-level key {key!r}")

    if not isinstance(doc["schema_version"], int):
        fail("'schema_version' must be an integer")
    if doc["schema_version"] < 2:
        fail(f"'schema_version' {doc['schema_version']} predates the "
             f"documented schema (>= 2)")

    if not isinstance(doc["bench"], str) or not doc["bench"]:
        fail("'bench' must be a non-empty string")

    config = doc["config"]
    if not isinstance(config, dict):
        fail("'config' must be an object")
    for key in ("host_nodes", "host_node_bytes"):
        if key not in config:
            fail(f"'config' missing {key!r}")
    if not isinstance(config.get("run"), dict):
        fail("'config.run' (the RunInfo reproducibility record) "
             "must be an object")
    run = config["run"]
    # Every kernel instance (one "<prefix>.instances" counter each)
    # must record its threading knobs: worker-thread count and the
    # per-CPU frame-cache geometry. Not every ".instances" prefix is
    # a kernel — VirtualMachine records "vm.instances" with VM-level
    # knobs only — so identify kernels by a kernel-only config key.
    kernel_prefixes = [k[: -len(".instances")] for k in run
                       if k.endswith(".instances")
                       and f"{k[: -len('.instances')]}.thp_enabled"
                       in run]
    for kp in kernel_prefixes:
        for key in ("threads", "phys.pcp_cpus", "phys.pcp_batch",
                    "phys.pcp_high"):
            if f"{kp}.{key}" not in run:
                fail(f"'config.run' kernel {kp!r} missing {key!r}")
    # Runs that used the ParallelDriver must record the base seed,
    # geometry, and each worker's derived RNG stream seed.
    if "parallel.threads" in run:
        for key in ("parallel.seed", "parallel.bytes_per_worker",
                    "parallel.chunk_bytes"):
            if key not in run:
                fail(f"'config.run' missing {key!r}")
        # Repeated notes (one ParallelDriver per bench cell) are
        # recorded as a list; the last entry is the live value.
        threads = run["parallel.threads"]
        if isinstance(threads, list):
            threads = threads[-1]
        for i in range(int(threads)):
            if f"parallel.worker{i}.seed" not in run:
                fail(f"'config.run' missing parallel.worker{i}.seed")
    # Runs that replayed a translation stream (runTranslation notes
    # "seed.translation") must record the replay-engine knobs: shard
    # count, chunk size, and the walk-memo toggle.
    if "seed.translation" in run:
        for key in ("xlat.threads", "xlat.chunk_accesses", "xlat.memo"):
            if key not in run:
                fail(f"'config.run' missing {key!r}")

    rows = doc["rows"]
    if not isinstance(rows, list) or not rows:
        fail("'rows' must be a non-empty list")
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            fail(f"row {i} is not an object")
        if "table" not in row:
            fail(f"row {i} has no 'table' caption tag")

    metrics = doc["metrics"]
    if not isinstance(metrics, dict) or not metrics:
        fail("'metrics' must be a non-empty object")
    for name, value in metrics.items():
        check_metric(name, value)

    print(f"check_bench_json: OK: {doc['bench']}: {len(rows)} rows, "
          f"{len(metrics)} metrics")


if __name__ == "__main__":
    main()
