# Empty compiler generated dependencies file for table6_bloat.
# This may be replaced when dependencies are built.
