/**
 * @file
 * Reproduces Fig. 13: execution-time overhead of address translation
 * (data-TLB misses that trigger page walks) across:
 *   native 4K / THP, virtualized 4K+4K / THP+THP,
 *   SpOT (CA paging guest+host), vRMM (CA paging), DS dual mode.
 * Expected shape (paper): virtualized THP+THP ~16.5% avg (2-3x the
 * native THP ~7%); SpOT drops it to ~0.9%, slightly above vRMM
 * (<0.1%), both close to DS (~0).
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/bench_io.hh"
#include "core/report.hh"

using namespace contig;

namespace
{

constexpr std::uint64_t kAccesses = ScaledDefaults::kAccessesPerRun;

/** Replay-engine knobs (--xlat-threads / --xlat-chunk). */
XlatReplayOpts gReplay;

double
nativeOverhead(const std::string &name, PolicyKind kind,
               std::uint64_t seed)
{
    NativeSystem sys(kind, seed);
    auto wl = makeWorkload(name, {1.0, seed});
    Process &proc = sys.kernel().createProcess(name);
    wl->setup(proc);
    auto r = runTranslation(*wl, nullptr, XlatScheme::Base, kAccesses,
                            99, gReplay);
    return r.overhead.overhead;
}

struct VirtResult
{
    double base = 0.0;
    double spot = 0.0;
    double rmm = 0.0;
    double ds = 0.0;
};

double
virtBaseOverhead(const std::string &name, PolicyKind kind,
                 std::uint64_t seed)
{
    VirtSystem sys(kind, kind, seed);
    auto wl = makeWorkload(name, {1.0, seed});
    Process &proc = sys.guest().createProcess(name);
    wl->setup(proc);
    auto r = runTranslation(*wl, &sys.vm(), XlatScheme::Base, kAccesses,
                            99, gReplay);
    return r.overhead.overhead;
}

/**
 * The CA-based schemes run workloads *consecutively inside one VM*,
 * as the paper does (§VI-A: "our applications run consecutively
 * without VM reboots") — the gPA->hPA dimension persists and ages,
 * which is where guest/host mapping mismatches come from.
 */
std::vector<VirtResult>
virtCaOverheads(std::uint64_t seed)
{
    VirtSystem sys(PolicyKind::Ca, PolicyKind::Ca, seed);
    std::vector<VirtResult> out;
    for (const auto &name : paperWorkloads()) {
        auto wl = makeWorkload(name, {1.0, seed});
        Process &proc = sys.guest().createProcess(name);
        wl->setup(proc);
        VirtResult res;
        res.spot = runTranslation(*wl, &sys.vm(), XlatScheme::Spot,
                                  kAccesses, 99, gReplay)
                       .overhead.overhead;
        res.rmm = runTranslation(*wl, &sys.vm(), XlatScheme::Rmm,
                                 kAccesses, 99, gReplay)
                      .overhead.overhead;
        res.ds = runTranslation(*wl, &sys.vm(), XlatScheme::Ds,
                                kAccesses, 99, gReplay)
                     .overhead.overhead;
        out.push_back(res);
        wl->teardown();
        sys.guest().exitProcess(proc);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("fig13_translation_overhead", argc, argv);
    gReplay.threads = out.xlatThreads();
    gReplay.chunkAccesses = out.xlatChunk();
    gReplay.traceIn = out.traceIn();
    gReplay.traceOut = out.traceOut();
    gReplay.ckptIn = out.ckptIn();
    gReplay.ckptOut = out.ckptOut();
    gReplay.ckptAtChunk = out.ckptAtChunk();

    Report rep("Fig. 13 — translation overhead vs ideal execution "
               "(lower is better)");
    rep.header({"workload", "4K", "THP", "4K+4K", "THP+THP",
                "SpOT(CA)", "vRMM(CA)", "DS"});

    const std::uint64_t seed = 7;
    std::vector<VirtResult> ca_all = virtCaOverheads(seed);

    std::vector<double> thp_n, thp_v, spot_v, rmm_v, ds_v;
    for (std::size_t i = 0; i < paperWorkloads().size(); ++i) {
        const auto &name = paperWorkloads()[i];
        double n4k = nativeOverhead(name, PolicyKind::Base4k, seed);
        double nthp = nativeOverhead(name, PolicyKind::Thp, seed);
        double v4k = virtBaseOverhead(name, PolicyKind::Base4k, seed);
        double vthp = virtBaseOverhead(name, PolicyKind::Thp, seed);
        const VirtResult &ca = ca_all[i];

        thp_n.push_back(nthp);
        thp_v.push_back(vthp);
        spot_v.push_back(ca.spot);
        rmm_v.push_back(ca.rmm);
        ds_v.push_back(ca.ds);

        rep.row({name, Report::pct(n4k), Report::pct(nthp),
                 Report::pct(v4k), Report::pct(vthp),
                 Report::pct(ca.spot, 2), Report::pct(ca.rmm, 2),
                 Report::pct(ca.ds, 2)});
    }

    auto mean = [](const std::vector<double> &v) {
        double s = 0;
        for (double x : v)
            s += x;
        return s / v.size();
    };
    rep.row({"mean", "", Report::pct(mean(thp_n)), "",
             Report::pct(mean(thp_v)), Report::pct(mean(spot_v), 2),
             Report::pct(mean(rmm_v), 2), Report::pct(mean(ds_v), 2)});
    out.add(rep);
    rep.print();

    std::printf("\npaper: THP ~7%% native, ~16.5%% virtualized; "
                "SpOT ~0.9%%, vRMM <0.1%%, DS ~0%%\n");
    out.write();
    return 0;
}
