#!/usr/bin/env python3
"""Gate the SoA/SIMD replay speedup measured by micro_xlat_scaling.

Usage: xlat_ratio_gate.py <BENCH_micro_xlat_scaling.json>
                          [--min-ratio R]

micro_xlat_scaling replays the same fig13 access stream through the
batched SoA engine (the `chunk_sweep` threads=1 chunk=4096 cell — the
shipping default) and through the historical per-access Reference loop
(the `engine_ref` cell) in the same process. Absolute wall clock is
machine-dependent, but the ratio between the two cells of one run is
not: both replay identical work back to back on the same core, so

    speedup = replay.wall_us(engine_ref) / replay.wall_us(default)

prices exactly the SoA layout + batched pipeline + SIMD probes. The
gate fails when the speedup falls under --min-ratio.

Two call sites in scripts/ci.sh:
  - the committed baseline (bench/baselines/...) is gated at the
    paper-reproduction floor (1.5x) — the recorded evidence;
  - the fresh CI run is gated at a noise-tolerant 1.2x — shared CI
    boxes jitter, but losing the whole batching win (a ratio near
    1.0x) means the Batched engine silently fell back to the
    per-access path.

Also requires the simulated counter columns (accesses, walks,
l1_hits, l2_hits, exposed_cycles) of the engine_ref and soa_scalar
cells to be byte-equal to the default cell — the engines must differ
in wall clock only.
"""

import json
import sys
from pathlib import Path

COUNTERS = ("accesses", "walks", "l1_hits", "l2_hits", "exposed_cycles")


def fail(msg):
    print(f"xlat_ratio_gate: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def find_cell(rows, cell, threads=1, chunk=4096):
    for r in rows:
        if (r.get("cell") == cell and r.get("threads") == threads
                and r.get("chunk") == chunk):
            return r
    fail(f"no '{cell}' row (threads={threads}, chunk={chunk})")


def main():
    argv = sys.argv[1:]
    min_ratio = 1.5
    if "--min-ratio" in argv:
        i = argv.index("--min-ratio")
        min_ratio = float(argv[i + 1])
        del argv[i:i + 2]
    if len(argv) != 1:
        fail("usage: xlat_ratio_gate.py <bench.json> [--min-ratio R]")

    doc = json.loads(Path(argv[0]).read_text())
    rows = doc.get("rows", [])
    default = find_cell(rows, "chunk_sweep")
    ref = find_cell(rows, "engine_ref")
    scalar = find_cell(rows, "soa_scalar")

    for name, row in (("engine_ref", ref), ("soa_scalar", scalar)):
        for c in COUNTERS:
            if row.get(c) != default.get(c):
                fail(f"{name}.{c} = {row.get(c)} differs from the "
                     f"default cell's {default.get(c)} — engines must "
                     f"only differ in wall clock")

    base_us = float(default["replay.wall_us"])
    ref_us = float(ref["replay.wall_us"])
    if base_us <= 0 or ref_us <= 0:
        fail("non-positive replay.wall_us")
    speedup = ref_us / base_us
    scalar_speedup = float(scalar["replay.wall_us"]) / base_us
    print(f"xlat_ratio_gate: batched+simd vs reference: "
          f"{speedup:.2f}x (simd share vs forced-scalar: "
          f"{scalar_speedup:.2f}x of that) [floor {min_ratio:.2f}x]")
    if speedup < min_ratio:
        fail(f"speedup {speedup:.2f}x under the {min_ratio:.2f}x floor")
    print("xlat_ratio_gate: OK")


if __name__ == "__main__":
    main()
