#include <gtest/gtest.h>

#include "base/rng.hh"
#include "base/serialize.hh"
#include "base/simd.hh"
#include "core/config.hh"
#include "mm/kernel.hh"
#include "obs/trace.hh"
#include "tlb/replay.hh"
#include "virt/vm.hh"

using namespace contig;

namespace
{

/**
 * The replay engine's determinism contract (tlb/replay.hh): one shard
 * is instruction-identical to a plain per-access TranslationSim loop,
 * chunking and the walk memo never move simulated counters, and a
 * fixed shard count is deterministic across reruns.
 */
struct ReplayTest : public ::testing::Test
{
    ReplayTest()
        : kernel(
              [] {
                  KernelConfig cfg;
                  cfg.phys.bytesPerNode = 256ull << 20;
                  cfg.phys.numNodes = 1;
                  return cfg;
              }(),
              std::make_unique<DefaultThpPolicy>()),
          proc(kernel.createProcess("r"))
    {
        vma = &proc.mmap(64 * kHugeSize);
        proc.touchRange(vma->start(), vma->bytes());
        // Mark the mapping so SpOT is allowed to fill its table.
        for (Vpn v = vma->start().pageNumber();
             v < vma->start().pageNumber() + vma->pages(); v += 512)
            proc.pageTable().setContigBit(v, true);
    }

    XlatConfig
    config(XlatScheme scheme)
    {
        XlatConfig cfg;
        cfg.tlb = ScaledDefaults::tlb();
        cfg.walker = ScaledDefaults::walker();
        cfg.scheme = scheme;
        cfg.spot = ScaledDefaults::spot();
        cfg.rangeTlb = ScaledDefaults::rangeTlb();
        return cfg;
    }

    /** A mixed-PC random stream over the touched VMA. */
    std::vector<MemAccess>
    trace(std::size_t n, std::uint64_t seed)
    {
        Rng rng(seed);
        std::vector<MemAccess> t(n);
        for (auto &a : t)
            a = {0x400000 + (rng.below(8) << 3),
                 vma->start() + (rng.below(vma->bytes()) & ~7ull)};
        return t;
    }

    Kernel kernel;
    Process &proc;
    Vma *vma = nullptr;
};

void
feed(ReplayEngine &engine, const std::vector<MemAccess> &t,
     std::size_t chunk)
{
    for (std::size_t off = 0; off < t.size(); off += chunk)
        engine.replayChunk(&t[off], std::min(chunk, t.size() - off));
}

void
expectSameStats(const XlatStats &a, const XlatStats &b)
{
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.l1Hits, b.l1Hits);
    EXPECT_EQ(a.l2Hits, b.l2Hits);
    EXPECT_EQ(a.walks, b.walks);
    EXPECT_EQ(a.walkRefs, b.walkRefs);
    EXPECT_EQ(a.walkCycles, b.walkCycles);
    EXPECT_EQ(a.exposedCycles, b.exposedCycles);
    EXPECT_EQ(a.spotCorrect, b.spotCorrect);
    EXPECT_EQ(a.spotMispredicted, b.spotMispredicted);
    EXPECT_EQ(a.spotNoPrediction, b.spotNoPrediction);
    EXPECT_EQ(a.rangeHits, b.rangeHits);
    EXPECT_EQ(a.segmentHits, b.segmentHits);
}

} // namespace

TEST_F(ReplayTest, OneShardMatchesSequentialSimAllSchemes)
{
    const auto t = trace(20000, 11);
    for (XlatScheme scheme : {XlatScheme::Base, XlatScheme::Spot,
                              XlatScheme::Rmm, XlatScheme::Ds}) {
        TranslationSim sim(config(scheme), proc.pageTable());
        ReplayEngine engine(config(scheme), 1, proc.pageTable());
        if (scheme == XlatScheme::Rmm || scheme == XlatScheme::Ds) {
            sim.setSegments(extractSegs(proc.pageTable()));
            engine.setSegments(extractSegs(proc.pageTable()));
        }
        for (const MemAccess &a : t)
            sim.access(a);
        feed(engine, t, 97); // odd chunk: exercises short tails
        expectSameStats(engine.mergedStats(), sim.stats());
        EXPECT_EQ(engine.accesses(), t.size());
    }
}

TEST_F(ReplayTest, ChunkSizeNeverMovesCounters)
{
    const auto t = trace(20000, 12);
    ReplayEngine a(config(XlatScheme::Spot), 1, proc.pageTable());
    ReplayEngine b(config(XlatScheme::Spot), 1, proc.pageTable());
    feed(a, t, 4096);
    feed(b, t, 33);
    expectSameStats(a.mergedStats(), b.mergedStats());
    EXPECT_GT(a.chunks(), 0u);
    EXPECT_GT(b.chunks(), a.chunks());
}

TEST_F(ReplayTest, WalkMemoNeverMovesCounters)
{
    const auto t = trace(20000, 13);
    XlatConfig on = config(XlatScheme::Spot);
    XlatConfig off = config(XlatScheme::Spot);
    on.walker.memoEnabled = true;
    off.walker.memoEnabled = false;
    ReplayEngine ea(on, 1, proc.pageTable());
    ReplayEngine eb(off, 1, proc.pageTable());
    feed(ea, t, 1024);
    feed(eb, t, 1024);
    expectSameStats(ea.mergedStats(), eb.mergedStats());
    // The memo was actually exercised, not just disabled twice.
    const WalkMemoStats *ms = ea.shard(0).walker().memoStats();
    ASSERT_NE(ms, nullptr);
    EXPECT_GT(ms->guestHits + ms->guestMisses, 0u);
    EXPECT_EQ(eb.shard(0).walker().memoStats(), nullptr);
}

TEST_F(ReplayTest, MutationEpochKeepsMemoizedReplayFresh)
{
    // Kernel-path table mutations bump PageTable::generation(), so a
    // replay interleaved with mapping changes must keep matching a
    // memo-off replay (stale memo entries are dropped, not served).
    const auto t1 = trace(8000, 14);
    XlatConfig on = config(XlatScheme::Base);
    XlatConfig off = config(XlatScheme::Base);
    off.walker.memoEnabled = false;
    ReplayEngine ea(on, 1, proc.pageTable());
    ReplayEngine eb(off, 1, proc.pageTable());
    feed(ea, t1, 512);
    feed(eb, t1, 512);

    const std::uint64_t gen_before = proc.pageTable().generation();
    Vma &extra = proc.mmap(4 * kHugeSize);
    proc.touchRange(extra.start(), extra.bytes());
    EXPECT_GT(proc.pageTable().generation(), gen_before);

    Rng rng(15);
    std::vector<MemAccess> t2(8000);
    for (auto &a : t2)
        a = {0x400000, extra.start() + (rng.below(extra.bytes()) & ~7ull)};
    feed(ea, t1, 512); // revisit memoized pages: stale entries drop
    feed(eb, t1, 512);
    feed(ea, t2, 512);
    feed(eb, t2, 512);
    expectSameStats(ea.mergedStats(), eb.mergedStats());
    const WalkMemoStats *ms = ea.shard(0).walker().memoStats();
    ASSERT_NE(ms, nullptr);
    EXPECT_GT(ms->staleDrops, 0u);
}

TEST_F(ReplayTest, VirtualizedOneShardMatchesSequentialSim)
{
    KernelConfig hcfg;
    hcfg.phys.bytesPerNode = 256ull << 20;
    hcfg.phys.numNodes = 1;
    Kernel host(hcfg, std::make_unique<DefaultThpPolicy>());
    VmConfig vcfg;
    vcfg.guestBytesPerNode = 128ull << 20;
    vcfg.guestNodes = 1;
    VirtualMachine vm(host, std::make_unique<DefaultThpPolicy>(), vcfg);
    Process &p = vm.guest().createProcess("g");
    Vma &gvma = p.mmap(32 * kHugeSize);
    p.touchRange(gvma.start(), gvma.bytes());

    Rng rng(16);
    std::vector<MemAccess> t(20000);
    for (auto &a : t)
        a = {0x400000 + (rng.below(8) << 3),
             gvma.start() + (rng.below(gvma.bytes()) & ~7ull)};

    TranslationSim sim(config(XlatScheme::Spot), p.pageTable(), vm);
    ReplayEngine engine(config(XlatScheme::Spot), 1, p.pageTable(), vm);
    for (const MemAccess &a : t)
        sim.access(a);
    feed(engine, t, 97);
    expectSameStats(engine.mergedStats(), sim.stats());
}

TEST_F(ReplayTest, ShardedReplayIsDeterministicAndConserving)
{
    const auto t = trace(20000, 17);
    ReplayEngine a(config(XlatScheme::Spot), 3, proc.pageTable());
    ReplayEngine b(config(XlatScheme::Spot), 3, proc.pageTable());
    feed(a, t, 1024);
    feed(b, t, 1024);
    expectSameStats(a.mergedStats(), b.mergedStats());

    const XlatStats s = a.mergedStats();
    EXPECT_EQ(s.accesses, t.size());
    EXPECT_EQ(s.l1Hits + s.l2Hits + s.walks, s.accesses);
    EXPECT_EQ(s.spotCorrect + s.spotMispredicted + s.spotNoPrediction,
              s.walks);

    // Each shard saw exactly its hash-partition subsequence.
    for (unsigned id = 0; id < 3; ++id) {
        std::uint64_t expected = 0;
        for (const MemAccess &m : t)
            if (ReplayEngine::shardOf(m.va.pageNumber(), 3) == id)
                ++expected;
        EXPECT_EQ(a.shard(id).stats().accesses, expected) << "shard "
                                                          << id;
    }

    ASSERT_TRUE(a.mergedSpotStats().has_value());
    ASSERT_TRUE(b.mergedSpotStats().has_value());
}

TEST_F(ReplayTest, BatchedEngineMatchesReferenceAllSchemes)
{
    // The engine golden-equivalence contract (tlb/translation_sim.hh):
    // the batched SoA inner loop is a pure wall-clock rewrite of the
    // per-access Reference loop — every simulated counter identical,
    // per scheme, per shard count.
    const auto t = trace(20000, 31);
    for (XlatScheme scheme : {XlatScheme::Base, XlatScheme::Spot,
                              XlatScheme::Rmm, XlatScheme::Ds}) {
        for (unsigned shards : {1u, 3u}) {
            XlatConfig ref_cfg = config(scheme);
            XlatConfig bat_cfg = config(scheme);
            ref_cfg.engine = XlatEngine::Reference;
            bat_cfg.engine = XlatEngine::Batched;
            ReplayEngine ref(ref_cfg, shards, proc.pageTable());
            ReplayEngine bat(bat_cfg, shards, proc.pageTable());
            if (scheme == XlatScheme::Rmm || scheme == XlatScheme::Ds) {
                ref.setSegments(extractSegs(proc.pageTable()));
                bat.setSegments(extractSegs(proc.pageTable()));
            }
            feed(ref, t, 97);
            feed(bat, t, 97);
            expectSameStats(bat.mergedStats(), ref.mergedStats());
        }
    }
}

TEST_F(ReplayTest, BatchedEngineMatchesReferenceVirtualized)
{
    KernelConfig hcfg;
    hcfg.phys.bytesPerNode = 256ull << 20;
    hcfg.phys.numNodes = 1;
    Kernel host(hcfg, std::make_unique<DefaultThpPolicy>());
    VmConfig vcfg;
    vcfg.guestBytesPerNode = 128ull << 20;
    vcfg.guestNodes = 1;
    VirtualMachine vm(host, std::make_unique<DefaultThpPolicy>(), vcfg);
    Process &p = vm.guest().createProcess("g");
    Vma &gvma = p.mmap(32 * kHugeSize);
    p.touchRange(gvma.start(), gvma.bytes());

    Rng rng(37);
    std::vector<MemAccess> t(20000);
    for (auto &a : t)
        a = {0x400000 + (rng.below(8) << 3),
             gvma.start() + (rng.below(gvma.bytes()) & ~7ull)};

    XlatConfig ref_cfg = config(XlatScheme::Spot);
    XlatConfig bat_cfg = config(XlatScheme::Spot);
    ref_cfg.engine = XlatEngine::Reference;
    bat_cfg.engine = XlatEngine::Batched;
    ReplayEngine ref(ref_cfg, 1, p.pageTable(), vm);
    ReplayEngine bat(bat_cfg, 1, p.pageTable(), vm);
    feed(ref, t, 97);
    feed(bat, t, 97);
    expectSameStats(bat.mergedStats(), ref.mergedStats());
}

TEST_F(ReplayTest, ForcedScalarProbesNeverMoveCounters)
{
    // simd.hh's probe-width contract: the AVX2 and scalar kernels
    // return the same lane for the same input, so a forced-scalar
    // engine replays to identical counters. (On a non-AVX2 host both
    // engines run scalar and the test is trivially green.)
    const auto t = trace(20000, 41);
    ReplayEngine wide(config(XlatScheme::Spot), 1, proc.pageTable());
    const bool was = simd::forceScalar();
    simd::setForceScalar(true);
    ReplayEngine narrow(config(XlatScheme::Spot), 1, proc.pageTable());
    simd::setForceScalar(was);
    feed(wide, t, 1024);
    feed(narrow, t, 1024);
    expectSameStats(wide.mergedStats(), narrow.mergedStats());
}

TEST_F(ReplayTest, BatchedEngineCheckpointRoundTrips)
{
    // Snapshot mid-replay with the SoA structures live, restore into
    // a fresh engine, and require the resumed half to land on the
    // uninterrupted run's counters exactly.
    const auto t = trace(20000, 43);
    const std::size_t half = 10000;

    ReplayEngine full(config(XlatScheme::Spot), 2, proc.pageTable());
    feed(full, t, 512);

    ReplayEngine first(config(XlatScheme::Spot), 2, proc.pageTable());
    for (std::size_t off = 0; off < half; off += 512)
        first.replayChunk(&t[off], std::min<std::size_t>(512, half - off));
    Serializer s;
    first.saveState(s);

    ReplayEngine resumed(config(XlatScheme::Spot), 2, proc.pageTable());
    Deserializer d(s.data().data(), s.size(), "test snapshot");
    resumed.restoreState(d);
    for (std::size_t off = half; off < t.size(); off += 512)
        resumed.replayChunk(&t[off],
                            std::min<std::size_t>(512, t.size() - off));
    expectSameStats(resumed.mergedStats(), full.mergedStats());
    EXPECT_EQ(resumed.accesses(), full.accesses());
}

TEST_F(ReplayTest, ShardPartitionIsPureAndCoversAllShards)
{
    std::vector<std::uint64_t> counts(4, 0);
    for (Vpn v = 0; v < 4096; ++v) {
        const unsigned id = ReplayEngine::shardOf(v, 4);
        ASSERT_LT(id, 4u);
        EXPECT_EQ(id, ReplayEngine::shardOf(v, 4));
        ++counts[id];
    }
    for (unsigned id = 0; id < 4; ++id)
        EXPECT_GT(counts[id], 0u) << "shard " << id << " never used";
    // One shard degenerates to the identity partition.
    for (Vpn v = 0; v < 64; ++v)
        EXPECT_EQ(ReplayEngine::shardOf(v, 1), 0u);
}

TEST_F(ReplayTest, ShardLoadAccountingAccumulates)
{
    const auto t = trace(20000, 23);
    ReplayEngine engine(config(XlatScheme::Spot), 3, proc.pageTable());
    feed(engine, t, 1024);

    std::uint64_t accounted = 0;
    for (unsigned id = 0; id < 3; ++id) {
        const ReplayEngine::ShardLoad l = engine.shardLoad(id);
        EXPECT_EQ(l.accesses, engine.shard(id).stats().accesses)
            << "shard " << id;
        accounted += l.accesses;
    }
    EXPECT_EQ(accounted, t.size());

    // The single-shard path accounts on slot 0 only.
    ReplayEngine one(config(XlatScheme::Spot), 1, proc.pageTable());
    feed(one, t, 1024);
    EXPECT_EQ(one.shardLoad(0).accesses, t.size());
    EXPECT_EQ(one.shardLoad(0).stallNs, 0u);
    EXPECT_EQ(one.shardLoad(0).waitNs, 0u);
}

TEST_F(ReplayTest, ThreadedReplayEmitsBarrierSpansOnWorkerLanes)
{
    obs::TraceSink &sink = obs::TraceSink::global();
    sink.clear();
    sink.setCapacity(1u << 16);
    sink.setCategoryMask(obs::kCatSync);

    {
        const auto t = trace(8000, 29);
        ReplayEngine engine(config(XlatScheme::Base), 2,
                            proc.pageTable());
        feed(engine, t, 2048);
    }

    std::vector<unsigned> lane_waits(3, 0);
    std::uint64_t spans = 0;
    for (const obs::TraceEvent &ev : sink.events()) {
        if (ev.kind != obs::TraceEventKind::BarrierWait)
            continue;
        ++spans;
        ASSERT_TRUE(ev.spanName != nullptr);
        const std::string name = ev.spanName;
        EXPECT_TRUE(name == "xlat.barrier.start" ||
                    name == "xlat.barrier.end")
            << name;
        // Worker lanes are 1 and 2 (never 0: main doesn't wait on
        // the worker barriers; the workers do).
        ASSERT_GE(ev.tid, 1u);
        ASSERT_LE(ev.tid, 2u);
        // The span's worker arg agrees with the lane it landed on.
        EXPECT_EQ(ev.args[0] + 1, ev.tid);
        ++lane_waits[ev.tid];
    }
    EXPECT_GT(spans, 0u);
    EXPECT_GT(lane_waits[1], 0u);
    EXPECT_GT(lane_waits[2], 0u);

    sink.setCategoryMask(0);
    sink.clear();
}
