/**
 * @file
 * Ablation: SpOT prediction-table geometry and the confidence
 * threshold. Sweeps table size (entries) and the speculate-above
 * confidence level on the consecutive-VM workload suite, reporting
 * the exposed translation overhead. The paper's 32-entry 4-way table
 * with a 2-bit counter sits at the knee: bigger tables buy little
 * because a handful of PCs cause most misses (§IV-C).
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/bench_io.hh"
#include "core/report.hh"

using namespace contig;

namespace
{

struct Variant
{
    const char *label;
    unsigned sets;
    unsigned ways;
    std::uint8_t threshold;
};

const Variant kVariants[] = {
    {"4e  (1x4), thr>1", 1, 4, 1},
    {"8e  (2x4), thr>1", 2, 4, 1},
    {"32e (8x4), thr>1 [paper]", 8, 4, 1},
    {"128e (32x4), thr>1", 32, 4, 1},
    {"32e (8x4), thr>0 (eager spec)", 8, 4, 0},
    {"32e (8x4), thr>2 (cautious)", 8, 4, 2},
};

double
overheadFor(const Variant &v)
{
    VirtSystem sys(PolicyKind::Ca, PolicyKind::Ca, 7);
    double sum = 0;
    for (const auto &name : paperWorkloads()) {
        auto wl = makeWorkload(name, {1.0, 7});
        Process &proc = sys.guest().createProcess(name);
        wl->setup(proc);

        XlatConfig cfg;
        cfg.tlb = ScaledDefaults::tlb();
        cfg.walker = ScaledDefaults::walker();
        cfg.scheme = XlatScheme::Spot;
        cfg.spot = ScaledDefaults::spot();
        cfg.spot.sets = v.sets;
        cfg.spot.ways = v.ways;
        cfg.spot.confidenceThreshold = v.threshold;
        TranslationSim sim(cfg, proc.pageTable(), sys.vm());
        Rng rng(99);
        for (std::uint64_t i = 0; i < 500000; ++i)
            sim.access(wl->nextAccess(rng));
        sum += overheadOf(sim.stats(), ScaledDefaults::perf()).overhead;

        wl->teardown();
        sys.guest().exitProcess(proc);
    }
    return sum / paperWorkloads().size();
}

} // namespace

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("ablate_spot_table", argc, argv);

    Report rep("Ablation — SpOT table geometry and confidence "
               "threshold (mean exposed overhead, suite)");
    rep.header({"variant", "mean overhead"});
    for (const Variant &v : kVariants)
        rep.row({v.label, Report::pct(overheadFor(v), 2)});
    out.add(rep);
    rep.print();

    std::printf("\nexpected: a knee at tens of entries (few PCs cause "
                "most misses); thr>0 speculates before confidence and "
                "pays flushes; thr>2 wastes correct predictions\n");
    out.write();
    return 0;
}
