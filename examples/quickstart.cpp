/**
 * @file
 * Quickstart: the library in ~60 lines.
 *
 * Builds a scaled 2-node machine running CA paging, runs a PageRank-
 * like workload on it, and shows (a) the contiguity CA paging created
 * and (b) how much of the nested-paging translation overhead SpOT
 * hides when the same workload runs inside a VM.
 *
 *   ./examples/quickstart
 *
 * Pass `--trace out.json` to also record a Chrome trace of the run
 * (page faults, allocations, SpOT outcomes, phase spans) viewable in
 * chrome://tracing or https://ui.perfetto.dev, and `--json out.json`
 * for the machine-readable result document.
 */

#include <cstdio>

#include "core/bench_io.hh"
#include "core/experiment.hh"
#include "core/report.hh"

using namespace contig;

int
main(int argc, char **argv)
{
    printScaledBanner();
    BenchOutput out("quickstart", argc, argv);

    // --- 1. Native machine with CA paging --------------------------------
    NativeSystem sys(PolicyKind::Ca);
    WorkloadConfig wcfg;
    wcfg.scale = 0.5; // quick run
    auto wl = makeWorkload("pagerank", wcfg);

    ContigRunResult r = sys.run(*wl);
    std::printf("\nnative CA paging, pagerank (%s footprint):\n",
                Report::bytes(wl->footprintBytes()).c_str());
    std::printf("  contiguous mappings:      %llu\n",
                static_cast<unsigned long long>(r.final.mappings));
    std::printf("  32 largest cover:         %s\n",
                Report::pct(r.final.cov32).c_str());
    std::printf("  mappings for 99%% cover:   %llu\n",
                static_cast<unsigned long long>(r.final.mappingsFor99));
    std::printf("  page faults:              %llu (p99 latency %.1f us)\n",
                static_cast<unsigned long long>(r.faults),
                r.p99FaultLatencyUs);
    sys.finish(*wl);

    // --- 2. The same workload, virtualized, with and without SpOT --------
    VirtSystem vsys(PolicyKind::Ca, PolicyKind::Ca);
    auto vwl = makeWorkload("pagerank", wcfg);
    Process &gproc = vsys.guest().createProcess("pagerank");
    vwl->setup(gproc);

    auto base = runTranslation(*vwl, &vsys.vm(), XlatScheme::Base,
                               500'000);
    auto spot = runTranslation(*vwl, &vsys.vm(), XlatScheme::Spot,
                               500'000);

    std::printf("\nvirtualized (nested paging), pagerank:\n");
    std::printf("  THP+THP walk overhead:    %s of ideal execution\n",
                Report::pct(base.overhead.overhead).c_str());
    std::printf("  with CA paging + SpOT:    %s\n",
                Report::pct(spot.overhead.overhead).c_str());
    std::printf("  SpOT correct predictions: %s of L2-TLB misses\n",
                Report::pct(spot.stats.walks
                                ? static_cast<double>(
                                      spot.stats.spotCorrect) /
                                      spot.stats.walks
                                : 0.0)
                    .c_str());

    out.note("workload", "pagerank");
    out.note("scale", wcfg.scale);
    out.write();
    return 0;
}
