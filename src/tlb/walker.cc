#include "tlb/walker.hh"

#include "base/logging.hh"
#include "base/serialize.hh"
#include "obs/metrics.hh"
#include "virt/vm.hh"

namespace contig
{

Walker::SoaCache::SoaCache(unsigned n)
    : entries(n), tags(simd::padLanes(n), simd::kNoTag64),
      lastUse(simd::padLanes(n), 0), valid(simd::padLanes(n), 0)
{
}

Walker::Walker(const PageTable &pt, const WalkerConfig &cfg)
    : pt_(pt), cfg_(cfg), psc_(cfg.pscEntries),
      nestedTlb_(cfg.nestedTlbEntries), simd_(simd::enabled())
{
    if (cfg.memoEnabled)
        memo_ = std::make_unique<WalkMemo>(cfg.memoEntriesLog2);
}

Walker::Walker(const PageTable &guest_pt, const VirtualMachine &vm,
               const WalkerConfig &cfg)
    : pt_(guest_pt), vm_(&vm), cfg_(cfg), psc_(cfg.pscEntries),
      nestedTlb_(cfg.nestedTlbEntries), simd_(simd::enabled())
{
    if (cfg.memoEnabled)
        memo_ = std::make_unique<WalkMemo>(cfg.memoEntriesLog2);
}

bool
Walker::cacheLookup(SoaCache &cache, std::uint64_t tag)
{
    const int i = simd::findTag(cache.tags.data(), cache.entries, tag,
                                simd_);
    if (i < 0)
        return false;
    cache.lastUse[i] = ++clock_;
    return true;
}

void
Walker::cacheFill(SoaCache &cache, std::uint64_t tag)
{
    contig_assert(tag != simd::kNoTag64, "walker cache tag collides "
                  "with the invalid-lane sentinel");
    // Deliberately the historical ordered scan: the first invalid
    // slot is taken as victim even if a matching entry sits after it
    // (the duplicate is tolerated; cacheLookup returns the earliest).
    unsigned victim = 0;
    for (unsigned i = 0; i < cache.entries; ++i) {
        if (cache.tags[i] == tag) {
            cache.lastUse[i] = ++clock_;
            return;
        }
        if (!cache.valid[i]) {
            victim = i;
            break;
        }
        if (cache.lastUse[i] < cache.lastUse[victim])
            victim = i;
    }
    cache.valid[victim] = 1;
    cache.tags[victim] = tag;
    cache.lastUse[victim] = ++clock_;
}

void
Walker::flushCaches()
{
    for (std::size_t i = 0; i < psc_.valid.size(); ++i) {
        psc_.valid[i] = 0;
        psc_.tags[i] = simd::kNoTag64;
    }
    for (std::size_t i = 0; i < nestedTlb_.valid.size(); ++i) {
        nestedTlb_.valid[i] = 0;
        nestedTlb_.tags[i] = simd::kNoTag64;
    }
}

void
Walker::nestedResolve(Pfn gfn, bool &hit, unsigned &count, Mapping &m)
{
    if (memo_) {
        const std::uint64_t gen = vm_->nestedPageTable().generation();
        if (const WalkMemo::NestedEntry *e = memo_->findNested(gfn, gen)) {
            hit = e->hit;
            count = e->nodeCount;
            m = e->mapping;
            return;
        }
        vm_->nestedWalk(gfn, nestedScratch_);
        memo_->fillNested(gfn, gen, nestedScratch_);
    } else {
        vm_->nestedWalk(gfn, nestedScratch_);
    }
    hit = nestedScratch_.hit;
    count = static_cast<unsigned>(nestedScratch_.nodeFrames.size());
    m = nestedScratch_.mapping;
}

std::optional<Mapping>
Walker::nestedTranslate(Pfn gfn, unsigned &refs)
{
    contig_assert(vm_, "nested translation without a VM");
    if (cfg_.nestedTlbEnabled) {
        ++stats_.nestedTlbLookups;
        // The nested TLB caches gPA->hPA at 2 MiB grain (host backing
        // is predominantly THP-mapped).
        if (cacheLookup(nestedTlb_, gfn >> kHugeOrder)) {
            ++stats_.nestedTlbHits;
            // A nested-TLB hit charges no refs; the memo (epoch-
            // checked) serves the same exact mapping nestedLookup
            // would descend for.
            if (memo_) {
                const std::uint64_t gen =
                    vm_->nestedPageTable().generation();
                if (const WalkMemo::NestedEntry *e =
                        memo_->findNested(gfn, gen)) {
                    if (!e->hit)
                        return std::nullopt;
                    return e->mapping;
                }
            }
            return vm_->nestedLookup(gfn);
        }
    }
    bool hit = false;
    unsigned count = 0;
    Mapping m;
    nestedResolve(gfn, hit, count, m);
    refs += count;
    if (!hit)
        return std::nullopt;
    // Refill the nested TLB with whatever nested leaf was resolved.
    if (cfg_.nestedTlbEnabled)
        cacheFill(nestedTlb_, gfn >> kHugeOrder);
    return m;
}

Walker::GuestView
Walker::guestTraversal(Vpn vpn)
{
    GuestView view;
    if (memo_) {
        const std::uint64_t gen = pt_.generation();
        if (const WalkMemo::GuestEntry *e = memo_->findGuest(vpn, gen)) {
            view.frames = e->nodeFrames.data();
            view.count = e->nodeCount;
            view.mapping = e->mapping;
            view.hit = e->hit;
            return view;
        }
        pt_.walk(vpn, guestScratch_);
        memo_->fillGuest(vpn, gen, guestScratch_);
    } else {
        pt_.walk(vpn, guestScratch_);
    }
    view.frames = guestScratch_.nodeFrames.data();
    view.count = static_cast<unsigned>(guestScratch_.nodeFrames.size());
    view.mapping = guestScratch_.mapping;
    view.hit = guestScratch_.hit;
    return view;
}

WalkResult
Walker::walk(Vpn vpn)
{
    WalkResult res;
    ++stats_.walks;

    const GuestView gtrace = guestTraversal(vpn);

    // PSC: L4+L3 reads skipped on a hit (tag covers 1 GiB regions).
    unsigned guest_refs = gtrace.count;
    unsigned skipped = 0;
    if (cfg_.pscEnabled && guest_refs > 2) {
        const std::uint64_t tag = vpn >> 18;
        if (cacheLookup(psc_, tag)) {
            ++stats_.pscHits;
            res.pscHit = true;
            // Root and L3 reads avoided; the last two levels (the
            // PDE/leaf reads) are always performed.
            skipped = std::min(2u, guest_refs - 2);
        } else {
            cacheFill(psc_, tag);
        }
    }

    unsigned refs = 0;
    if (!vm_) {
        refs = guest_refs - skipped;
    } else {
        // Nested: each remaining guest node read needs a nested
        // translation of the node's gPA plus the node read itself.
        for (unsigned i = skipped; i < gtrace.count; ++i) {
            nestedTranslate(gtrace.frames[i], refs);
            refs += 1; // the guest PTE read
        }
    }

    if (!gtrace.hit) {
        res.hit = false;
        res.refs = refs;
        res.cycles = refs * cfg_.cyclesPerRef;
        stats_.totalRefs += refs;
        return res;
    }

    Mapping leaf = gtrace.mapping;
    // Exact frame for this vpn inside the (possibly huge) leaf.
    const Vpn leaf_base = vpn & ~(pagesInOrder(leaf.order) - 1);
    const Pfn exact_gfn = leaf.pfn + (vpn - leaf_base);

    if (!vm_) {
        res.hit = true;
        res.mapping = leaf;
        res.guestContigBit = leaf.contigBit;
        res.offset = static_cast<std::int64_t>(vpn) -
                     static_cast<std::int64_t>(exact_gfn);
    } else {
        // Final nested walk for the data gPA.
        auto nested = nestedTranslate(exact_gfn, refs);
        if (!nested) {
            res.hit = false;
            res.refs = refs;
            res.cycles = refs * cfg_.cyclesPerRef;
            stats_.totalRefs += refs;
            return res;
        }
        res.hit = true;
        res.mapping = *nested;
        // The effective 2-D page order is the smaller of the two.
        res.mapping.order = std::min<unsigned>(leaf.order, nested->order);
        res.guestContigBit = leaf.contigBit;
        res.nestedContigBit = nested->contigBit;
        res.offset = static_cast<std::int64_t>(vpn) -
                     static_cast<std::int64_t>(nested->pfn);
    }

    res.refs = refs;
    res.cycles = refs * cfg_.cyclesPerRef;
    stats_.totalRefs += refs;
    return res;
}

void
Walker::collectMetrics(obs::MetricSink &sink) const
{
    sink.counter("walks", stats_.walks);
    sink.counter("total_refs", stats_.totalRefs);
    sink.counter("psc_hits", stats_.pscHits);
    sink.counter("nested_tlb_hits", stats_.nestedTlbHits);
    sink.counter("nested_tlb_lookups", stats_.nestedTlbLookups);
    if (memo_) {
        const WalkMemoStats &ms = memo_->stats();
        sink.counter("memo.guest_hits", ms.guestHits);
        sink.counter("memo.guest_misses", ms.guestMisses);
        sink.counter("memo.nested_hits", ms.nestedHits);
        sink.counter("memo.nested_misses", ms.nestedMisses);
        sink.counter("memo.stale_drops", ms.staleDrops);
    }
}


void
Walker::saveState(Serializer &s) const
{
    const std::size_t sec = s.beginSection(sectionTag('W', 'A', 'L', 'K'));
    s.boolean(virtualized());
    s.u64(clock_);
    s.u64(stats_.walks);
    s.u64(stats_.totalRefs);
    s.u64(stats_.pscHits);
    s.u64(stats_.nestedTlbHits);
    s.u64(stats_.nestedTlbLookups);
    // Padding slots are not checkpointed; invalid slots write a
    // canonical zero tag (the live lane holds the sentinel instead).
    const auto save_cache = [&s](const SoaCache &cache) {
        s.u64(cache.entries);
        for (unsigned i = 0; i < cache.entries; ++i) {
            s.u64(cache.valid[i] ? cache.tags[i] : 0);
            s.u64(cache.lastUse[i]);
            s.boolean(cache.valid[i] != 0);
        }
    };
    save_cache(psc_);
    save_cache(nestedTlb_);
    s.endSection(sec);
}

void
Walker::restoreState(Deserializer &d)
{
    d.expectSection(sectionTag('W', 'A', 'L', 'K'), "walker");
    const bool virt = d.boolean();
    if (virt != virtualized())
        fatal("checkpoint walker mode mismatch: file is %s, this run"
              " is %s",
              virt ? "virtualized" : "native",
              virtualized() ? "virtualized" : "native");
    clock_ = d.u64();
    stats_.walks = d.u64();
    stats_.totalRefs = d.u64();
    stats_.pscHits = d.u64();
    stats_.nestedTlbHits = d.u64();
    stats_.nestedTlbLookups = d.u64();
    const auto restore_cache = [&d](SoaCache &cache, const char *what) {
        const std::uint64_t n = d.u64();
        if (n != cache.entries)
            fatal("checkpoint walker %s size mismatch: %llu vs %u",
                  what, static_cast<unsigned long long>(n),
                  cache.entries);
        for (unsigned i = 0; i < cache.entries; ++i) {
            const std::uint64_t tag = d.u64();
            cache.lastUse[i] = d.u64();
            cache.valid[i] = d.boolean() ? 1 : 0;
            cache.tags[i] = cache.valid[i] ? tag : simd::kNoTag64;
        }
    };
    restore_cache(psc_, "PSC");
    restore_cache(nestedTlb_, "nested TLB");
    // The traversal memo is intentionally not restored: it only
    // affects wall-clock time, and its epoch tags are bound to this
    // process's page-table generations anyway.
}

} // namespace contig
